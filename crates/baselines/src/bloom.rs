//! Bloom-filter substrate for BWL (Yun+, DATE 2012).

use serde::{Deserialize, Serialize};
use twl_rng::SplitMix64;

/// The full-width mix for hash function number `i` over `value`.
///
/// Derives independent hash functions from SplitMix64 seeded with the
/// (value, i) pair — cheap and adequate for Bloom use. Filters of
/// different sizes probing the same `(value, i)` share this mix and
/// differ only in the final range reduction, which is what lets a
/// membership filter and a counting filter fuse their probes.
#[inline]
fn bloom_mix(value: u64, i: u32) -> u64 {
    let mut sm = SplitMix64::seed_from(value ^ (u64::from(i) << 56) ^ 0xB10F_17E8);
    sm.next_u64()
}

/// Reduces a full-width mix into `[0, m)`.
///
/// For power-of-two `m` (every default configuration) the modulo is a
/// mask — the same value, minus the 20-30 cycle division on the hot
/// probe path.
#[inline]
fn bloom_reduce(mixed: u64, m: usize) -> usize {
    let m = m as u64;
    if m & (m - 1) == 0 {
        (mixed & (m - 1)) as usize
    } else {
        (mixed % m) as usize
    }
}

/// Hashes `value` with hash function number `i` into `[0, m)`.
#[inline]
fn bloom_hash(value: u64, i: u32, m: usize) -> usize {
    bloom_reduce(bloom_mix(value, i), m)
}

/// Hash-index scratch for allocation-free k-probe operations.
const MAX_INLINE_HASHES: usize = 16;

/// A classic bit-vector Bloom filter: set membership with false
/// positives, no false negatives.
///
/// # Examples
///
/// ```
/// use twl_baselines::BloomFilter;
///
/// let mut bf = BloomFilter::new(1024, 3);
/// bf.insert(42);
/// assert!(bf.contains(42));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: usize,
    k: u32,
}

impl BloomFilter {
    /// Creates a filter with `m` bits and `k` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `k == 0`.
    #[must_use]
    pub fn new(m: usize, k: u32) -> Self {
        assert!(m > 0 && k > 0, "bloom filter needs bits and hashes");
        Self {
            bits: vec![0; m.div_ceil(64)],
            m,
            k,
        }
    }

    /// Inserts a value.
    #[inline]
    pub fn insert(&mut self, value: u64) {
        for i in 0..self.k {
            let h = bloom_hash(value, i, self.m);
            self.bits[h / 64] |= 1u64 << (h % 64);
        }
    }

    /// Tests membership (may report false positives).
    #[inline]
    #[must_use]
    pub fn contains(&self, value: u64) -> bool {
        (0..self.k).all(|i| {
            let h = bloom_hash(value, i, self.m);
            self.bits[h / 64] & (1u64 << (h % 64)) != 0
        })
    }

    /// Whether the bit for one already-mixed probe is set.
    #[inline]
    fn bit_for(&self, mixed: u64) -> bool {
        let h = bloom_reduce(mixed, self.m);
        self.bits[h / 64] & (1u64 << (h % 64)) != 0
    }

    /// Clears the filter.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Number of bits in the filter.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.m
    }
}

/// A counting Bloom filter: approximate per-key counts via the
/// minimum-counter estimate (conservative-update sketch).
///
/// BWL uses this to detect hot pages without a per-page write-number
/// table: the estimate never undercounts, so a page whose estimate is
/// below the hot threshold is guaranteed cold.
///
/// # Examples
///
/// ```
/// use twl_baselines::CountingBloomFilter;
///
/// let mut cbf = CountingBloomFilter::new(4096, 4);
/// for _ in 0..5 {
///     cbf.insert(7);
/// }
/// assert!(cbf.estimate(7) >= 5);
/// assert_eq!(cbf.estimate(8), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountingBloomFilter {
    counters: Vec<u32>,
    k: u32,
}

impl CountingBloomFilter {
    /// Creates a filter with `m` counters and `k` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `k == 0`.
    #[must_use]
    pub fn new(m: usize, k: u32) -> Self {
        assert!(
            m > 0 && k > 0,
            "counting bloom filter needs counters and hashes"
        );
        Self {
            counters: vec![0; m],
            k,
        }
    }

    /// Inserts one occurrence of `value`, returning the new estimate.
    ///
    /// Uses conservative update: only the minimal counters are bumped,
    /// which tightens the overcount.
    pub fn insert(&mut self, value: u64) -> u64 {
        self.insert_n(value, 1)
    }

    /// Inserts `n` occurrences of `value` in O(k), returning the
    /// estimate the last insertion would have reported — exactly
    /// equivalent to `n` sequential [`CountingBloomFilter::insert`]
    /// calls.
    ///
    /// Repeated conservative updates of one value behave like a rising
    /// water level: each insert lifts the minimal counters by one, so
    /// after `n` inserts every hashed counter sits at
    /// `max(counter, min + n)` (saturating). Returns the current
    /// estimate unchanged when `n == 0`.
    pub fn insert_n(&mut self, value: u64, n: u64) -> u64 {
        let m = self.counters.len();
        let mut inline_buf = [0usize; MAX_INLINE_HASHES];
        let mut spill_buf;
        let hs: &mut [usize] = if self.k as usize <= MAX_INLINE_HASHES {
            &mut inline_buf[..self.k as usize]
        } else {
            spill_buf = vec![0usize; self.k as usize];
            &mut spill_buf
        };
        for (i, h) in hs.iter_mut().enumerate() {
            *h = bloom_hash(value, i as u32, m);
        }
        let min = u64::from(hs.iter().map(|&h| self.counters[h]).min().unwrap_or(0));
        if n == 0 {
            return min;
        }
        let level = min.saturating_add(n).min(u64::from(u32::MAX)) as u32;
        for &h in hs.iter() {
            if self.counters[h] < level {
                self.counters[h] = level;
            }
        }
        min.saturating_add(n - 1).min(u64::from(u32::MAX)) + 1
    }

    /// Estimated occurrence count (never an undercount).
    #[inline]
    #[must_use]
    pub fn estimate(&self, value: u64) -> u64 {
        let m = self.counters.len();
        u64::from(
            (0..self.k)
                .map(|i| self.counters[bloom_hash(value, i, m)])
                .min()
                .unwrap_or(0),
        )
    }

    /// [`CountingBloomFilter::estimate`] for `value` when `written`
    /// contains it, `None` otherwise — one fused probe.
    ///
    /// Exactly equivalent to
    /// `written.contains(value).then(|| self.estimate(value))`, but the
    /// per-hash mixing is shared between the two filters (the same
    /// `(value, i)` mix feeds both range reductions) and the membership
    /// test short-circuits identically, so a scan over the whole
    /// logical space pays one mix per probe instead of two. Requires
    /// both filters to use the same hash count; falls back to the two
    /// independent probes otherwise.
    #[must_use]
    pub fn estimate_if_written(&self, written: &BloomFilter, value: u64) -> Option<u64> {
        if self.k != written.k {
            return written.contains(value).then(|| self.estimate(value));
        }
        let m = self.counters.len();
        let mut min = u32::MAX;
        for i in 0..self.k {
            let mixed = bloom_mix(value, i);
            if !written.bit_for(mixed) {
                return None;
            }
            min = min.min(self.counters[bloom_reduce(mixed, m)]);
        }
        // k > 0 by construction, so `min` was always lowered at least once.
        Some(u64::from(min))
    }

    /// Clears every counter (epoch boundary).
    pub fn clear(&mut self) {
        self.counters.fill(0);
    }

    /// Number of counters.
    #[must_use]
    pub fn counter_len(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_rng::{SimRng, Xoshiro256StarStar};

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut bf = BloomFilter::new(2048, 3);
        for v in 0..200u64 {
            bf.insert(v * 7919);
        }
        for v in 0..200u64 {
            assert!(bf.contains(v * 7919));
        }
    }

    #[test]
    fn bloom_false_positive_rate_is_bounded() {
        let mut bf = BloomFilter::new(8192, 4);
        for v in 0..500u64 {
            bf.insert(v);
        }
        // Theoretical FP rate ≈ (1 - e^{-kn/m})^k ≈ 0.24% here; allow 2%.
        let fps = (10_000..20_000u64).filter(|&v| bf.contains(v)).count();
        assert!(fps < 200, "false positives: {fps}");
    }

    #[test]
    fn bloom_clear_resets() {
        let mut bf = BloomFilter::new(64, 2);
        bf.insert(1);
        bf.clear();
        assert!(!bf.contains(1));
    }

    #[test]
    fn cbf_never_undercounts() {
        let mut cbf = CountingBloomFilter::new(512, 4);
        let mut rng = Xoshiro256StarStar::seed_from(1);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..2000 {
            let v = rng.next_bounded(100);
            cbf.insert(v);
            *truth.entry(v).or_insert(0u64) += 1;
        }
        for (&v, &c) in &truth {
            assert!(cbf.estimate(v) >= c, "undercount for {v}");
        }
    }

    #[test]
    fn cbf_overcount_is_modest() {
        let mut cbf = CountingBloomFilter::new(4096, 4);
        for v in 0..64u64 {
            for _ in 0..10 {
                cbf.insert(v);
            }
        }
        let over: u64 = (0..64u64).map(|v| cbf.estimate(v) - 10).sum();
        assert!(over < 64, "total overcount {over}");
    }

    #[test]
    fn cbf_insert_n_matches_sequential_inserts() {
        let mut bulk = CountingBloomFilter::new(512, 4);
        let mut seq = CountingBloomFilter::new(512, 4);
        // Interleave other keys so counters start from unequal values.
        let mut rng = Xoshiro256StarStar::seed_from(9);
        for _ in 0..300 {
            let v = rng.next_bounded(50);
            bulk.insert(v);
            seq.insert(v);
        }
        for &(v, n) in &[(7u64, 1u64), (7, 13), (99, 40), (3, 0)] {
            let got = bulk.insert_n(v, n);
            let mut want = seq.estimate(v); // the n == 0 convention
            for _ in 0..n {
                want = seq.insert(v);
            }
            assert_eq!(got, want, "estimate for v={v} n={n}");
            assert_eq!(bulk, seq, "state after v={v} n={n}");
        }
    }

    #[test]
    fn fused_probe_matches_independent_probes() {
        let mut written = BloomFilter::new(2048, 4);
        let mut cbf = CountingBloomFilter::new(512, 4);
        let mut rng = Xoshiro256StarStar::seed_from(7);
        for _ in 0..400 {
            let v = rng.next_bounded(300);
            written.insert(v);
            cbf.insert(v);
        }
        for v in 0..600u64 {
            let fused = cbf.estimate_if_written(&written, v);
            let split = written.contains(v).then(|| cbf.estimate(v));
            assert_eq!(fused, split, "value {v}");
        }
    }

    #[test]
    fn fused_probe_falls_back_on_mismatched_hash_counts() {
        let mut written = BloomFilter::new(2048, 3);
        let mut cbf = CountingBloomFilter::new(512, 4);
        written.insert(9);
        cbf.insert(9);
        assert_eq!(cbf.estimate_if_written(&written, 9), Some(cbf.estimate(9)));
        assert_eq!(cbf.estimate_if_written(&written, 10), None);
    }

    #[test]
    fn hashing_handles_non_power_of_two_sizes() {
        // The pow2 mask fast path must agree with the generic modulo:
        // same (value, i) mixes, different reductions — exercise both.
        let mut bf = BloomFilter::new(1000, 4);
        let mut cbf = CountingBloomFilter::new(627, 3);
        for v in 0..100u64 {
            bf.insert(v * 31);
            cbf.insert(v * 31);
        }
        for v in 0..100u64 {
            assert!(bf.contains(v * 31));
            assert!(cbf.estimate(v * 31) >= 1);
        }
    }

    #[test]
    fn cbf_clear_resets() {
        let mut cbf = CountingBloomFilter::new(64, 2);
        cbf.insert(5);
        cbf.clear();
        assert_eq!(cbf.estimate(5), 0);
    }

    #[test]
    #[should_panic(expected = "bloom filter needs bits and hashes")]
    fn zero_size_panics() {
        let _ = BloomFilter::new(0, 1);
    }
}
