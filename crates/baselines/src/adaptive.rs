//! Security-level-adjustable wear leveling: Security Refresh driven by
//! an online attack monitor.
//!
//! Combines the ideas of the paper's references \[7\] (Security-RBSG:
//! dynamic mapping with adjustable security levels) and \[11\]
//! (Qureshi+ HPCA 2011: online detection of malicious write streams):
//! the scheme runs Security Refresh at its configured (cheap) rate on
//! benign traffic, and multiplies the refresh rate while a
//! [`AttackMonitor`] window flags write-stream concentration.
//!
//! The payoff shows when the base rate is too slow for the endurance
//! scale (e.g. the paper's nominal interval of 128 on a scaled device):
//! static SR then collapses under a repeat attack, while the adaptive
//! variant detects the concentration within one window and refreshes
//! fast enough to survive — without paying the fast-refresh write
//! overhead on benign workloads. See the `extension_adaptive` bench.

use crate::{SecurityRefresh, SrConfig, SrError};
use twl_pcm::{LogicalPageAddr, PcmDevice, PcmError, PhysicalPageAddr};
use twl_wl_core::{AttackMonitor, ReadOutcome, WearLeveler, WlStats, WriteOutcome};

/// Security Refresh with monitor-driven security levels.
///
/// # Examples
///
/// ```
/// use twl_baselines::{AdaptiveSecurityRefresh, SrConfig};
/// use twl_pcm::{LogicalPageAddr, PcmConfig, PcmDevice};
/// use twl_wl_core::WearLeveler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pcm = PcmConfig::builder().pages(256).mean_endurance(100_000).build()?;
/// let mut device = PcmDevice::new(&pcm);
/// let mut scheme = AdaptiveSecurityRefresh::new(&SrConfig::for_pages(256)?, 256, 8)?;
/// scheme.write(LogicalPageAddr::new(1), &mut device)?;
/// assert!(!scheme.boosted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveSecurityRefresh {
    sr: SecurityRefresh,
    monitor: AttackMonitor,
    attack_boost: u64,
    boosted: bool,
    boost_windows: u64,
}

impl AdaptiveSecurityRefresh {
    /// Creates the scheme: Security Refresh configured by `config`, a
    /// default attack monitor, and a refresh-rate multiplier of
    /// `attack_boost` applied while under suspicion.
    ///
    /// # Errors
    ///
    /// Returns [`SrError`] if the Security Refresh configuration is
    /// invalid for `pages`.
    ///
    /// # Panics
    ///
    /// Panics if `attack_boost == 0`.
    pub fn new(config: &SrConfig, pages: u64, attack_boost: u64) -> Result<Self, SrError> {
        assert!(attack_boost > 0, "boost must be positive");
        Ok(Self {
            sr: SecurityRefresh::new(config, pages)?,
            monitor: AttackMonitor::for_pages(),
            attack_boost,
            boosted: false,
            boost_windows: 0,
        })
    }

    /// Whether the refresh rate is currently boosted.
    #[must_use]
    pub fn boosted(&self) -> bool {
        self.boosted
    }

    /// Number of monitor windows spent boosted.
    #[must_use]
    pub fn boost_windows(&self) -> u64 {
        self.boost_windows
    }
}

impl WearLeveler for AdaptiveSecurityRefresh {
    fn name(&self) -> &str {
        "SR_adaptive"
    }

    fn page_count(&self) -> u64 {
        self.sr.page_count()
    }

    fn translate(&self, la: LogicalPageAddr) -> PhysicalPageAddr {
        self.sr.translate(la)
    }

    fn write_batch_cap(&self, wear_margin: u64) -> u64 {
        // Same write machinery as the wrapped Security Refresh; rate
        // boosts change *when* refreshes fire, not how many device
        // writes one logical write can cause.
        self.sr.write_batch_cap(wear_margin)
    }

    fn write(
        &mut self,
        la: LogicalPageAddr,
        device: &mut PcmDevice,
    ) -> Result<WriteOutcome, PcmError> {
        if self.monitor.observe_write(la, None) || self.monitor.under_attack() != self.boosted {
            self.boosted = self.monitor.under_attack();
            let boost = if self.boosted { self.attack_boost } else { 1 };
            self.sr.set_rate_boost(boost);
        }
        if self.boosted {
            self.boost_windows += 1;
        }
        self.sr.write(la, device)
    }

    fn read(&mut self, la: LogicalPageAddr, device: &PcmDevice) -> Result<ReadOutcome, PcmError> {
        self.sr.read(la, device)
    }

    fn stats(&self) -> &WlStats {
        self.sr.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::PcmConfig;

    #[test]
    fn boost_engages_under_repeat_traffic() {
        let pages = 256u64;
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(100_000_000)
            .build()
            .unwrap();
        let mut device = PcmDevice::new(&pcm);
        let mut scheme =
            AdaptiveSecurityRefresh::new(&SrConfig::for_pages(pages).unwrap(), pages, 8).unwrap();
        for _ in 0..40_000u64 {
            scheme.write(LogicalPageAddr::new(0), &mut device).unwrap();
        }
        assert!(scheme.boosted(), "repeat traffic must trigger the boost");
        // Boosted refresh shows up as a higher extra-write ratio than
        // the nominal 2/128 + 2/128 ≈ 3.1 %.
        assert!(scheme.stats().extra_write_ratio() > 0.05);
    }

    #[test]
    fn boost_disengages_on_benign_traffic() {
        let pages = 256u64;
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(100_000_000)
            .build()
            .unwrap();
        let mut device = PcmDevice::new(&pcm);
        let mut scheme =
            AdaptiveSecurityRefresh::new(&SrConfig::for_pages(pages).unwrap(), pages, 8).unwrap();
        for _ in 0..20_000u64 {
            scheme.write(LogicalPageAddr::new(0), &mut device).unwrap();
        }
        assert!(scheme.boosted());
        for i in 0..40_000u64 {
            scheme
                .write(LogicalPageAddr::new(i % pages), &mut device)
                .unwrap();
        }
        assert!(!scheme.boosted(), "uniform traffic must clear the boost");
    }

    #[test]
    fn benign_overhead_matches_plain_sr() {
        let pages = 512u64;
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(100_000_000)
            .build()
            .unwrap();
        let config = SrConfig::for_pages(pages).unwrap();

        let mut device_a = PcmDevice::new(&pcm);
        let mut plain = SecurityRefresh::new(&config, pages).unwrap();
        let mut device_b = PcmDevice::new(&pcm);
        let mut adaptive = AdaptiveSecurityRefresh::new(&config, pages, 8).unwrap();
        for i in 0..50_000u64 {
            plain
                .write(LogicalPageAddr::new(i % pages), &mut device_a)
                .unwrap();
            adaptive
                .write(LogicalPageAddr::new(i % pages), &mut device_b)
                .unwrap();
        }
        let a = plain.stats().extra_write_ratio();
        let b = adaptive.stats().extra_write_ratio();
        assert!((a - b).abs() < 0.005, "plain {a} vs adaptive {b}");
    }
}
