//! On-Demand Page Paired PCM (Asadinia, Arjomand & Sarbazi-Azad,
//! DAC 2014) — the paper's reference \[1\].
//!
//! Where every other scheme in this workspace treats the first page
//! failure as end-of-life, OD3P *degrades gracefully*: when a page
//! exhausts its endurance, its logical page is re-paired on demand with
//! a healthy host page, and the device keeps serving (at reduced
//! effective capacity and with the host absorbing the guest's writes).
//! Lifetime becomes "until no healthy host remains" rather than "until
//! the weakest page dies".
//!
//! The scheme here composes OD3P's failure handling with an identity
//! base mapping; it is evaluated in the `extension_od3p` bench as a
//! lifetime-extension comparison point, not as part of the paper's
//! Fig. 6/8 grids (the paper uses it as related work only).

use serde::{Deserialize, Serialize};
use twl_pcm::{LogicalPageAddr, PcmDevice, PcmError, PhysicalPageAddr};
use twl_wl_core::{ReadOutcome, WearLeveler, WlStats, WriteOutcome};

/// Configuration of [`OnDemandPagePairing`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Od3pConfig {
    /// Stop accepting new guests once this fraction of pages has
    /// failed: the device is considered end-of-life (capacity and
    /// performance have degraded past usefulness).
    pub max_failed_fraction: f64,
    /// Engine cycles per request (pairing-table lookup).
    pub table_latency: u64,
}

impl Default for Od3pConfig {
    fn default() -> Self {
        Self {
            max_failed_fraction: 0.5,
            table_latency: 10,
        }
    }
}

/// Per-logical-page routing state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// Served by its home frame.
    Home,
    /// Home frame failed; served by a host frame.
    Hosted(PhysicalPageAddr),
}

/// OD3P: dynamic re-pairing of failed pages onto healthy hosts.
///
/// # Examples
///
/// ```
/// use twl_baselines::{Od3pConfig, OnDemandPagePairing};
/// use twl_pcm::{LogicalPageAddr, PcmConfig, PcmDevice};
/// use twl_wl_core::WearLeveler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pcm = PcmConfig::builder().pages(64).mean_endurance(1_000).seed(1).build()?;
/// let mut device = PcmDevice::new(&pcm);
/// let mut od3p = OnDemandPagePairing::new(&Od3pConfig::default(), &device);
/// od3p.write(LogicalPageAddr::new(0), &mut device)?;
/// assert_eq!(od3p.failed_pages(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OnDemandPagePairing {
    config: Od3pConfig,
    routes: Vec<Route>,
    /// Whether a frame already hosts a guest (a host serves exactly one
    /// guest besides its own resident, as in the paper's pairing).
    hosts_guest: Vec<bool>,
    /// Initial endurance ranking, strongest first — hosts are recruited
    /// strongest-first.
    strength_order: Vec<PhysicalPageAddr>,
    failed: u64,
    stats: WlStats,
}

impl OnDemandPagePairing {
    /// Creates the scheme for `device`.
    #[must_use]
    pub fn new(config: &Od3pConfig, device: &PcmDevice) -> Self {
        let pages = device.page_count();
        let mut strength_order = device.endurance_map().sorted_by_endurance();
        strength_order.reverse();
        Self {
            config: *config,
            routes: vec![Route::Home; pages as usize],
            hosts_guest: vec![false; pages as usize],
            strength_order,
            failed: 0,
            stats: WlStats::new(),
        }
    }

    /// Number of pages that have failed and been re-paired.
    #[must_use]
    pub fn failed_pages(&self) -> u64 {
        self.failed
    }

    /// Fraction of the device that has failed.
    #[must_use]
    pub fn failed_fraction(&self) -> f64 {
        self.failed as f64 / self.routes.len() as f64
    }

    /// Current physical frame serving a logical page.
    fn route(&self, la: LogicalPageAddr) -> PhysicalPageAddr {
        match self.routes[la.as_usize()] {
            Route::Home => PhysicalPageAddr::new(la.index()),
            Route::Hosted(host) => host,
        }
    }

    /// Recruits the strongest healthy, guest-free frame as a host.
    fn recruit_host(
        &mut self,
        device: &PcmDevice,
        exclude: PhysicalPageAddr,
    ) -> Option<PhysicalPageAddr> {
        self.strength_order.iter().copied().find(|&pa| {
            pa != exclude && !self.hosts_guest[pa.as_usize()] && device.remaining(pa) > 0
        })
    }
}

impl WearLeveler for OnDemandPagePairing {
    fn name(&self) -> &str {
        "OD3P"
    }

    fn page_count(&self) -> u64 {
        self.routes.len() as u64
    }

    fn translate(&self, la: LogicalPageAddr) -> PhysicalPageAddr {
        self.route(la)
    }

    fn write_batch_cap(&self, wear_margin: u64) -> u64 {
        // One request write plus (on a wear-out retry) a pairing
        // migration and redirected write — well under eight device
        // writes to any one frame per logical write.
        (wear_margin.saturating_sub(1) / 8).max(1)
    }

    fn write(
        &mut self,
        la: LogicalPageAddr,
        device: &mut PcmDevice,
    ) -> Result<WriteOutcome, PcmError> {
        let pa = self.route(la);
        match device.write_page(pa) {
            Ok(()) => {
                let outcome = WriteOutcome {
                    pa,
                    device_writes: 1,
                    swapped: false,
                    engine_cycles: self.config.table_latency,
                    blocking_cycles: 0,
                };
                self.stats.record_write(&outcome);
                Ok(outcome)
            }
            Err(PcmError::PageWornOut { .. }) => {
                // On-demand re-pairing: retire the frame, recruit a host,
                // and serve the write there.
                self.failed += 1;
                if self.failed_fraction() > self.config.max_failed_fraction {
                    // Degraded past the configured limit: report the
                    // failure as end-of-life.
                    return Err(PcmError::PageWornOut {
                        addr: pa,
                        writes: device.wear(pa),
                    });
                }
                let Some(host) = self.recruit_host(device, pa) else {
                    return Err(PcmError::PageWornOut {
                        addr: pa,
                        writes: device.wear(pa),
                    });
                };
                self.hosts_guest[host.as_usize()] = true;
                self.routes[la.as_usize()] = Route::Hosted(host);
                device.write_page(host)?;
                let outcome = WriteOutcome {
                    pa: host,
                    device_writes: 1,
                    swapped: true,
                    engine_cycles: self.config.table_latency,
                    // Re-pairing migrates the failed page's content.
                    blocking_cycles: device.config().timing.migrate_latency(),
                };
                self.stats.record_write(&outcome);
                Ok(outcome)
            }
            Err(e) => Err(e),
        }
    }

    fn read(&mut self, la: LogicalPageAddr, device: &PcmDevice) -> Result<ReadOutcome, PcmError> {
        let pa = self.route(la);
        device.read_page(pa)?;
        Ok(ReadOutcome {
            pa,
            engine_cycles: self.config.table_latency,
        })
    }

    fn stats(&self) -> &WlStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::PcmConfig;

    fn setup(pages: u64, endurance: u64) -> (PcmDevice, OnDemandPagePairing) {
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(endurance)
            .seed(6)
            .build()
            .unwrap();
        let device = PcmDevice::new(&pcm);
        let od3p = OnDemandPagePairing::new(&Od3pConfig::default(), &device);
        (device, od3p)
    }

    #[test]
    fn survives_first_page_failure() {
        let (mut device, mut od3p) = setup(16, 100);
        let la = LogicalPageAddr::new(0);
        let home_endurance = device.endurance(PhysicalPageAddr::new(0));
        // Exhaust the home frame and keep going.
        for _ in 0..home_endurance + 50 {
            od3p.write(la, &mut device).unwrap();
        }
        assert_eq!(od3p.failed_pages(), 1);
        assert_ne!(od3p.translate(la).index(), 0, "must be re-homed");
    }

    #[test]
    fn host_is_the_strongest_healthy_frame() {
        let (mut device, mut od3p) = setup(16, 100);
        let la = LogicalPageAddr::new(3);
        let strongest = *device.endurance_map().sorted_by_endurance().last().unwrap();
        let e = device.endurance(PhysicalPageAddr::new(3));
        for _ in 0..e + 1 {
            od3p.write(la, &mut device).unwrap();
        }
        // If LA3's home *was* the strongest, the host is the runner-up.
        if strongest.index() != 3 {
            assert_eq!(od3p.translate(la), strongest);
        }
    }

    #[test]
    fn lifetime_extends_well_past_first_failure() {
        let (mut device, mut od3p) = setup(32, 200);
        let la = LogicalPageAddr::new(0);
        let first = device.endurance(PhysicalPageAddr::new(0));
        let mut writes = 0u64;
        while od3p.write(la, &mut device).is_ok() {
            writes += 1;
            assert!(writes < 1_000_000, "must terminate");
        }
        // A repeat stream burns through host after host: total absorbed
        // writes far exceed the first page's endurance.
        assert!(
            writes > 3 * first,
            "od3p absorbed {writes}, first failure at {first}"
        );
    }

    #[test]
    fn gives_up_at_max_failed_fraction() {
        let pcm = PcmConfig::builder()
            .pages(8)
            .mean_endurance(50)
            .seed(2)
            .build()
            .unwrap();
        let mut device = PcmDevice::new(&pcm);
        let config = Od3pConfig {
            max_failed_fraction: 0.25,
            table_latency: 10,
        };
        let mut od3p = OnDemandPagePairing::new(&config, &device);
        let la = LogicalPageAddr::new(0);
        let mut result = Ok(());
        for _ in 0..10_000 {
            if let Err(e) = od3p.write(la, &mut device).map(|_| ()) {
                result = Err(e);
                break;
            }
        }
        assert!(result.is_err(), "must eventually give up");
        assert!(od3p.failed_fraction() > 0.25);
    }

    #[test]
    fn each_host_serves_one_guest() {
        let (mut device, mut od3p) = setup(16, 60);
        // Kill several home frames.
        for i in 0..4u64 {
            let la = LogicalPageAddr::new(i);
            let e = device.endurance(PhysicalPageAddr::new(i));
            for _ in 0..e + 1 {
                od3p.write(la, &mut device).unwrap();
            }
        }
        // All four guests live on distinct hosts.
        let hosts: std::collections::HashSet<u64> = (0..4u64)
            .map(|i| od3p.translate(LogicalPageAddr::new(i)).index())
            .collect();
        assert_eq!(hosts.len(), 4);
    }

    #[test]
    fn reads_follow_the_reroute() {
        let (mut device, mut od3p) = setup(16, 100);
        let la = LogicalPageAddr::new(5);
        let e = device.endurance(PhysicalPageAddr::new(5));
        for _ in 0..e + 1 {
            od3p.write(la, &mut device).unwrap();
        }
        let r = od3p.read(la, &device).unwrap();
        assert_eq!(r.pa, od3p.translate(la));
        assert_ne!(r.pa.index(), 5);
    }
}
