//! Security Refresh (Seong, Woo & Lee, ISCA 2010).
//!
//! The paper's stand-in for *traditional* (PV-unaware) wear leveling
//! ("SR" in Figs. 6, 8, 9). The scheme keeps no per-page tables: each
//! region maps logical offsets to frames by XOR-ing a secret key, and a
//! background *refresh* gradually migrates the region from its current
//! key `k0` to a new random key `k1`, two frames at a time, every
//! `interval` writes. Because a round's swap pairs are
//! `(l·k0, l·k1 = l·k0⊕d)`, each refresh step exchanges exactly two
//! frames and the mapping stays a bijection at every instant.
//!
//! We implement the full **two-level** organisation of the ISCA paper:
//! an outer level randomizes the whole address space (spreading traffic
//! across regions over time) and an inner level per region reacts
//! quickly to concentrated traffic — a region's refresh counter advances
//! with *its own* write traffic, so a hammered region re-keys faster.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use twl_pcm::{LogicalPageAddr, PcmDevice, PcmError, PhysicalPageAddr};
use twl_rng::{SimRng, SplitMix64, Xoshiro256StarStar};
use twl_wl_core::{BatchOutcome, ReadOutcome, WearLeveler, WlStats, WriteOutcome};

/// Error returned for invalid [`SrConfig`] parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrError(String);

impl fmt::Display for SrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Security Refresh configuration: {}", self.0)
    }
}

impl Error for SrError {}

/// Configuration of [`SecurityRefresh`].
///
/// Both refresh intervals default to 128 writes, the rate the DAC'17
/// paper fixes for all schemes' background swaps (Table 1).
///
/// # Examples
///
/// ```
/// use twl_baselines::SrConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SrConfig::for_pages(8192)?;
/// assert_eq!(config.inner_region_pages, 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SrConfig {
    /// Pages per inner region (power of two).
    pub inner_region_pages: u64,
    /// Writes to a region between inner refresh steps.
    pub inner_interval: u64,
    /// Global writes between outer refresh steps.
    pub outer_interval: u64,
    /// Disable the outer level (single-level ablation).
    pub two_level: bool,
    /// Key-generation seed.
    pub seed: u64,
    /// Engine cycles charged per request for the XOR remap datapath.
    pub remap_latency: u64,
}

impl SrConfig {
    /// A sensible configuration for a device of `pages` pages: 64-page
    /// inner regions (or half the device if smaller), both intervals at
    /// 128 (the paper's Table 1 rate), two levels.
    ///
    /// # Errors
    ///
    /// Returns [`SrError`] if `pages` is not a power of two or is < 4.
    pub fn for_pages(pages: u64) -> Result<Self, SrError> {
        if pages < 4 || !pages.is_power_of_two() {
            return Err(SrError(format!(
                "page count must be a power of two >= 4, got {pages}"
            )));
        }
        Ok(Self {
            inner_region_pages: 64.min(pages / 2),
            inner_interval: 128,
            outer_interval: 128,
            two_level: true,
            seed: 0x5345_4355,
            remap_latency: 4,
        })
    }

    /// A configuration for a *scaled* simulation device.
    ///
    /// Security Refresh's protection depends on the ratio between its
    /// refresh-round length and the page endurance: a frame must never
    /// absorb a meaningful fraction of its endurance within one round.
    /// On the nominal device (10⁸ endurance) the paper's interval of 128
    /// easily satisfies this; on a scaled device the intervals must
    /// shrink in proportion or SR spuriously collapses under
    /// concentrated attacks (a scaling artifact, not an SR weakness).
    /// This preset picks 16-page inner regions and intervals bounding a
    /// frame's per-round absorption to ~2 % of its endurance, converging
    /// back to the paper's 128 at nominal endurance.
    ///
    /// # Errors
    ///
    /// Returns [`SrError`] if `pages` is not a power of two or is < 4.
    pub fn for_scaled_device(pages: u64, mean_endurance: u64) -> Result<Self, SrError> {
        let mut config = Self::for_pages(pages)?;
        config.inner_region_pages = 64.min(pages / 2);
        // Under a fully concentrated attack, a frame absorbs one inner
        // round's worth of region writes (inner_n × interval) before the
        // refresh pointer moves the hot offset off it: bound that dwell
        // at ~8 % of endurance.
        let inner_bound = mean_endurance / (12 * config.inner_region_pages);
        config.inner_interval = inner_bound.clamp(4, 128);
        // An outer round parks a hammered address in one region for
        // pages × interval writes, which the inner level spreads over
        // inner_n frames: bound the per-frame share per visit at ~6 %
        // of endurance.
        let outer_bound = mean_endurance * config.inner_region_pages / (16 * pages);
        config.outer_interval = outer_bound.clamp(8, 128);
        Ok(config)
    }

    fn validate(&self, pages: u64) -> Result<(), SrError> {
        if pages < 4 || !pages.is_power_of_two() {
            return Err(SrError(format!(
                "page count must be a power of two >= 4, got {pages}"
            )));
        }
        if !self.inner_region_pages.is_power_of_two() || self.inner_region_pages < 2 {
            return Err(SrError("inner region must be a power of two >= 2".into()));
        }
        if self.inner_region_pages > pages {
            return Err(SrError("inner region larger than device".into()));
        }
        if self.inner_interval == 0 || self.outer_interval == 0 {
            return Err(SrError("refresh intervals must be positive".into()));
        }
        Ok(())
    }
}

/// Reverses the low `bits` bits of `v`.
fn rev_bits(v: u64, bits: u32) -> u64 {
    v.reverse_bits() >> (64 - bits)
}

/// One Security-Refresh level: a dual-key XOR mapping over `2^bits`
/// slots with a gradual refresh pointer.
#[derive(Debug, Clone)]
struct SrLevel {
    bits: u32,
    k0: u64,
    k1: u64,
    /// Refresh pointer: slots `l` with `min(l, l ⊕ d) < rp` use `k1`.
    rp: u64,
    writes: u64,
    interval: u64,
    /// Balanced key schedule: keys enumerate `cycle_base ⊕ rev(0‥n-1)`
    /// (bit-reversed counter), so within any n consecutive rounds every
    /// slot visits every frame exactly once, with *high* address bits
    /// changing first — consecutive rounds land in different regions of
    /// any outer structure. Independent uniform keys would revisit
    /// frames in birthday-clustered bursts, which at simulation scale
    /// concentrates wear; the base re-randomizes each full cycle.
    cycle_base: u64,
    cycle_pos: u64,
    rng: Xoshiro256StarStar,
}

impl SrLevel {
    fn new(bits: u32, interval: u64, seed: u64) -> Self {
        let mut rng = Xoshiro256StarStar::seed_from(seed);
        let n = 1u64 << bits;
        let cycle_base = rng.next_bounded(n);
        Self {
            bits,
            k0: cycle_base,
            k1: cycle_base ^ rev_bits(1, bits),
            rp: 0,
            writes: 0,
            interval,
            cycle_base,
            cycle_pos: 1,
            rng,
        }
    }

    fn slots(&self) -> u64 {
        1u64 << self.bits
    }

    /// Current slot mapping. A slot pair `{l, l ⊕ d}` flips to the new
    /// key atomically when the pointer passes its smaller member, so the
    /// map is a bijection mid-round.
    fn map(&self, l: u64) -> u64 {
        debug_assert!(l < self.slots());
        let d = self.k0 ^ self.k1;
        if l.min(l ^ d) < self.rp {
            l ^ self.k1
        } else {
            l ^ self.k0
        }
    }

    /// Counts one write; every `interval` writes, advances the refresh
    /// pointer one slot and returns the frame pair to exchange, if any.
    fn on_write(&mut self) -> Option<(u64, u64)> {
        self.writes += 1;
        if !self.writes.is_multiple_of(self.interval) {
            return None;
        }
        let d = self.k0 ^ self.k1;
        let p = self.rp;
        self.rp += 1;
        let swap = if d != 0 && p < (p ^ d) {
            Some((p ^ self.k0, p ^ self.k1))
        } else {
            None
        };
        if self.rp == self.slots() {
            // Round complete: retire k0, advance the balanced schedule.
            self.k0 = self.k1;
            self.cycle_pos += 1;
            if self.cycle_pos == self.slots() {
                self.cycle_pos = 0;
                self.cycle_base = self.rng.next_bounded(self.slots());
            }
            self.k1 = self.cycle_base ^ rev_bits(self.cycle_pos, self.bits);
            self.rp = 0;
        }
        swap
    }
}

/// Two-level Security Refresh over a whole device.
///
/// See the module docs above for the algorithm. The outer level
/// shuffles logical pages across the whole device; the inner level
/// re-keys each region at a rate proportional to the region's own write
/// traffic.
#[derive(Debug, Clone)]
pub struct SecurityRefresh {
    config: SrConfig,
    outer: SrLevel,
    inner: Vec<SrLevel>,
    inner_bits: u32,
    stats: WlStats,
}

impl SecurityRefresh {
    /// Creates the scheme for a device of `pages` pages.
    ///
    /// # Errors
    ///
    /// Returns [`SrError`] if `pages` is not a power of two or the
    /// configuration is inconsistent with it.
    pub fn new(config: &SrConfig, pages: u64) -> Result<Self, SrError> {
        config.validate(pages)?;
        let total_bits = pages.trailing_zeros();
        let inner_bits = config.inner_region_pages.trailing_zeros();
        let regions = pages / config.inner_region_pages;
        let mut seeds = SplitMix64::seed_from(config.seed);
        let outer = SrLevel::new(total_bits, config.outer_interval, seeds.next_u64());
        let inner = (0..regions)
            .map(|_| SrLevel::new(inner_bits, config.inner_interval, seeds.next_u64()))
            .collect();
        Ok(Self {
            config: config.clone(),
            outer,
            inner,
            inner_bits,
            stats: WlStats::new(),
        })
    }

    /// The configuration the scheme runs with.
    #[must_use]
    pub fn config(&self) -> &SrConfig {
        &self.config
    }

    /// Scales the refresh rate up by `boost` (intervals divided by it,
    /// floor 1). `boost = 1` restores the configured rate.
    ///
    /// This is the actuation knob of security-level-adjustable schemes
    /// (Security-RBSG, the paper's reference \[7\]): refresh faster
    /// while a wear-out attack is suspected, pay the nominal overhead
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `boost == 0`.
    pub fn set_rate_boost(&mut self, boost: u64) {
        assert!(boost > 0, "boost must be positive");
        self.outer.interval = (self.config.outer_interval / boost).max(1);
        for level in &mut self.inner {
            level.interval = (self.config.inner_interval / boost).max(1);
        }
    }

    /// Maps a logical page through both levels.
    fn map(&self, la: LogicalPageAddr) -> PhysicalPageAddr {
        let m = if self.config.two_level {
            self.outer.map(la.index())
        } else {
            la.index()
        };
        let region = (m >> self.inner_bits) as usize;
        let offset = m & (self.config.inner_region_pages - 1);
        let frame = self.inner[region].map(offset);
        PhysicalPageAddr::new(((region as u64) << self.inner_bits) | frame)
    }

    /// Physical frame of an *intermediate* (outer-mapped) address.
    fn frame_of_intermediate(&self, m: u64) -> PhysicalPageAddr {
        let region = (m >> self.inner_bits) as usize;
        let offset = m & (self.config.inner_region_pages - 1);
        PhysicalPageAddr::new(((region as u64) << self.inner_bits) | self.inner[region].map(offset))
    }
}

impl WearLeveler for SecurityRefresh {
    fn name(&self) -> &str {
        "SR"
    }

    fn page_count(&self) -> u64 {
        self.outer.slots()
    }

    fn translate(&self, la: LogicalPageAddr) -> PhysicalPageAddr {
        self.map(la)
    }

    fn write_batch_cap(&self, wear_margin: u64) -> u64 {
        // One request write plus up to two refresh swap pairs (two
        // levels) per logical write — at most five device writes total,
        // so no single frame can gain more than eight per write.
        (wear_margin.saturating_sub(1) / 8).max(1)
    }

    fn write(
        &mut self,
        la: LogicalPageAddr,
        device: &mut PcmDevice,
    ) -> Result<WriteOutcome, PcmError> {
        let migrate = device.config().timing.migrate_latency();
        let levels = if self.config.two_level { 2 } else { 1 };
        let engine_cycles = self.config.remap_latency * levels;
        let mut device_writes = 0u32;
        let mut blocking_cycles = 0u64;
        let mut swapped = false;

        // The request itself, through the current mapping.
        let m = if self.config.two_level {
            self.outer.map(la.index())
        } else {
            la.index()
        };
        let region = (m >> self.inner_bits) as usize;
        let pa = self.frame_of_intermediate(m);
        device.write_page(pa)?;
        device_writes += 1;

        // Inner refresh: driven by this region's own traffic, so hot
        // regions re-key faster (the heart of SR's attack resistance).
        if let Some((f1, f2)) = self.inner[region].on_write() {
            let base = (region as u64) << self.inner_bits;
            device.write_page(PhysicalPageAddr::new(base | f1))?;
            device.write_page(PhysicalPageAddr::new(base | f2))?;
            device_writes += 2;
            blocking_cycles += 2 * migrate;
            swapped = true;
            twl_telemetry::counter!("twl.baselines.sr.inner_swaps").inc();
        }

        // Outer refresh: driven by global traffic; exchanges the data of
        // two intermediate addresses, wherever their regions' inner maps
        // put them.
        if self.config.two_level {
            if let Some((m1, m2)) = self.outer.on_write() {
                let pa1 = self.frame_of_intermediate(m1);
                let pa2 = self.frame_of_intermediate(m2);
                device.write_page(pa1)?;
                device.write_page(pa2)?;
                device_writes += 2;
                blocking_cycles += 2 * migrate;
                swapped = true;
                twl_telemetry::counter!("twl.baselines.sr.outer_swaps").inc();
            }
        }

        let outcome = WriteOutcome {
            pa,
            device_writes,
            swapped,
            engine_cycles,
            blocking_cycles,
        };
        self.stats.record_write(&outcome);
        Ok(outcome)
    }

    /// Event-skipping fast path. Between refresh events nothing in SR
    /// moves: both levels' mappings are functions of `(k0, k1, rp)`,
    /// which only change when a level's write counter crosses a
    /// multiple of its interval, and the counters advance by exactly
    /// one per serviced write. So the stretch until the next event on
    /// *either* level is a run of identical plain writes to one frame —
    /// bulk-written in O(1) — and the event-carrying write itself runs
    /// through the scalar path.
    fn write_batch(&mut self, la: LogicalPageAddr, n: u64, device: &mut PcmDevice) -> BatchOutcome {
        let mut batch = BatchOutcome::default();
        let mut remaining = n;
        while remaining > 0 {
            // Mapping state is stable here (between events), so the
            // region and frame hold for the whole quiet stretch.
            let m = if self.config.two_level {
                self.outer.map(la.index())
            } else {
                la.index()
            };
            let region = (m >> self.inner_bits) as usize;
            let inner = &self.inner[region];
            // Writes until a level's counter next hits a multiple of
            // its interval (`i - w % i`, which is `i` right after an
            // event). The outer level never fires when disabled — its
            // counter does not advance on the scalar path either.
            let until_inner = inner.interval - inner.writes % inner.interval;
            let until_outer = if self.config.two_level {
                self.outer.interval - self.outer.writes % self.outer.interval
            } else {
                u64::MAX
            };
            let quiet = until_inner.min(until_outer) - 1;
            let bulk = quiet.min(remaining);
            if bulk > 0 {
                let pa = self.frame_of_intermediate(m);
                let levels = if self.config.two_level { 2 } else { 1 };
                let outcome = WriteOutcome {
                    pa,
                    device_writes: 1,
                    swapped: false,
                    engine_cycles: self.config.remap_latency * levels,
                    blocking_cycles: 0,
                };
                let done = device.write_page_n(pa, bulk);
                // The scalar path bumps the counters and records stats
                // only after a successful device write, so a mid-bulk
                // wear-out credits exactly the writes that landed.
                self.inner[region].writes += done.landed;
                if self.config.two_level {
                    self.outer.writes += done.landed;
                }
                self.stats.record_write_n(&outcome, done.landed);
                batch.serviced += done.landed;
                if done.landed > 0 {
                    batch.last = Some(outcome);
                }
                if let Some(e) = done.failure {
                    batch.failure = Some(e);
                    return batch;
                }
                remaining -= bulk;
            }
            if remaining == 0 {
                break;
            }
            // The next write fires a refresh event on at least one
            // level; the scalar path handles the swap writes and their
            // accounting exactly.
            match self.write(la, device) {
                Ok(outcome) => {
                    batch.serviced += 1;
                    batch.last = Some(outcome);
                    remaining -= 1;
                }
                Err(e) => {
                    batch.failure = Some(e);
                    return batch;
                }
            }
        }
        batch
    }

    fn read(&mut self, la: LogicalPageAddr, device: &PcmDevice) -> Result<ReadOutcome, PcmError> {
        let pa = self.map(la);
        device.read_page(pa)?;
        let levels = if self.config.two_level { 2 } else { 1 };
        Ok(ReadOutcome {
            pa,
            engine_cycles: self.config.remap_latency * levels,
        })
    }

    fn stats(&self) -> &WlStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use twl_pcm::PcmConfig;

    fn scheme(pages: u64) -> SecurityRefresh {
        SecurityRefresh::new(&SrConfig::for_pages(pages).unwrap(), pages).unwrap()
    }

    #[test]
    fn level_map_is_bijective_through_a_round() {
        let mut level = SrLevel::new(6, 1, 42);
        for _ in 0..200 {
            let mapped: HashSet<u64> = (0..64).map(|l| level.map(l)).collect();
            assert_eq!(mapped.len(), 64, "mapping must stay a permutation");
            let _ = level.on_write();
        }
    }

    #[test]
    fn level_swaps_track_mapping_changes() {
        // Whenever on_write returns a frame pair, exactly the two logical
        // slots mapping to those frames must exchange mappings.
        let mut level = SrLevel::new(5, 1, 7);
        for _ in 0..200 {
            let before: Vec<u64> = (0..32).map(|l| level.map(l)).collect();
            let swap = level.on_write();
            let after: Vec<u64> = (0..32).map(|l| level.map(l)).collect();
            match swap {
                None => {
                    // A round boundary may have occurred, but with rp
                    // reset the k0←k1 handover preserves the map.
                    assert_eq!(before, after, "no-swap step must not move data");
                }
                Some((f1, f2)) => {
                    let mut moved = 0;
                    for l in 0..32usize {
                        if before[l] != after[l] {
                            moved += 1;
                            assert!(before[l] == f1 || before[l] == f2);
                            assert!(after[l] == f1 || after[l] == f2);
                        }
                    }
                    assert_eq!(moved, 2, "exactly the swapped pair moves");
                }
            }
        }
    }

    #[test]
    fn whole_device_mapping_is_bijective_under_traffic() {
        let pages = 256;
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(1_000_000)
            .seed(3)
            .build()
            .unwrap();
        let mut device = PcmDevice::new(&pcm);
        let mut sr = scheme(pages);
        let mut rng = Xoshiro256StarStar::seed_from(9);
        for _ in 0..10_000 {
            let la = LogicalPageAddr::new(rng.next_bounded(pages));
            sr.write(la, &mut device).unwrap();
            if device.total_writes().is_multiple_of(1000) {
                let mapped: HashSet<u64> = (0..pages)
                    .map(|l| sr.translate(LogicalPageAddr::new(l)).index())
                    .collect();
                assert_eq!(mapped.len(), pages as usize);
            }
        }
    }

    #[test]
    fn repeat_traffic_spreads_wear() {
        let pages = 256;
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(100_000_000)
            .seed(5)
            .build()
            .unwrap();
        let mut device = PcmDevice::new(&pcm);
        let mut config = SrConfig::for_pages(pages).unwrap();
        config.inner_interval = 8;
        config.outer_interval = 8;
        let mut sr = SecurityRefresh::new(&config, pages).unwrap();
        let la = LogicalPageAddr::new(0);
        for _ in 0..200_000 {
            sr.write(la, &mut device).unwrap();
        }
        let touched = device.wear_counters().iter().filter(|&&w| w > 0).count();
        assert!(
            touched > pages as usize / 2,
            "randomized refresh must spread a repeat attack; touched {touched}"
        );
    }

    #[test]
    fn stats_match_device() {
        let pages = 128;
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(1_000_000)
            .build()
            .unwrap();
        let mut device = PcmDevice::new(&pcm);
        let mut sr = scheme(pages);
        for i in 0..5_000u64 {
            sr.write(LogicalPageAddr::new(i % pages), &mut device)
                .unwrap();
        }
        assert_eq!(sr.stats().device_writes, device.total_writes());
        assert!(sr.stats().swaps > 0);
        // Extra-write ratio ≈ 2/inner + 2/outer = 2/128 + 2/128 ≈ 3.1 %.
        let ratio = sr.stats().extra_write_ratio();
        assert!((0.02..0.05).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn non_power_of_two_rejected() {
        assert!(SrConfig::for_pages(100).is_err());
        let config = SrConfig::for_pages(128).unwrap();
        assert!(SecurityRefresh::new(&config, 96).is_err());
    }

    #[test]
    fn single_level_ablation_works() {
        let pages = 128;
        let mut config = SrConfig::for_pages(pages).unwrap();
        config.two_level = false;
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(1_000_000)
            .build()
            .unwrap();
        let mut device = PcmDevice::new(&pcm);
        let mut sr = SecurityRefresh::new(&config, pages).unwrap();
        for i in 0..1_000u64 {
            sr.write(LogicalPageAddr::new(i % pages), &mut device)
                .unwrap();
        }
        assert_eq!(sr.stats().logical_writes, 1_000);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;
    use twl_pcm::PcmConfig;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any legal region/interval geometry keeps the whole-device
        /// mapping a permutation under arbitrary traffic.
        #[test]
        fn arbitrary_geometry_stays_bijective(
            pages_log2 in 4u32..9,
            inner_log2 in 1u32..6,
            inner_interval in 1u64..64,
            outer_interval in 1u64..64,
            two_level in any::<bool>(),
            writes in proptest::collection::vec(0u64..512, 1..400),
        ) {
            let pages = 1u64 << pages_log2;
            let inner = (1u64 << inner_log2).min(pages / 2);
            let config = SrConfig {
                inner_region_pages: inner,
                inner_interval,
                outer_interval,
                two_level,
                seed: 7,
                remap_latency: 4,
            };
            let pcm = PcmConfig::builder()
                .pages(pages)
                .mean_endurance(10_000_000)
                .seed(1)
                .build()
                .expect("valid config");
            let mut device = PcmDevice::new(&pcm);
            let mut sr = SecurityRefresh::new(&config, pages).expect("valid geometry");
            for &w in &writes {
                sr.write(LogicalPageAddr::new(w % pages), &mut device).expect("healthy");
            }
            let mapped: HashSet<u64> = (0..pages)
                .map(|l| sr.translate(LogicalPageAddr::new(l)).index())
                .collect();
            prop_assert_eq!(mapped.len() as u64, pages);
            prop_assert_eq!(sr.stats().device_writes, device.total_writes());
        }

        /// The rate boost divides intervals and never stalls refresh.
        #[test]
        fn rate_boost_is_monotone(boost in 1u64..1000) {
            let pages = 128u64;
            let pcm = PcmConfig::builder()
                .pages(pages)
                .mean_endurance(10_000_000)
                .build()
                .expect("valid config");
            let mut device = PcmDevice::new(&pcm);
            let mut sr =
                SecurityRefresh::new(&SrConfig::for_pages(pages).expect("pow2"), pages).expect("valid");
            sr.set_rate_boost(boost);
            for i in 0..5_000u64 {
                sr.write(LogicalPageAddr::new(i % pages), &mut device).expect("healthy");
            }
            // Higher boost -> at least as many swaps as the base rate
            // would produce (2 per 128 writes per level).
            let min_swaps = if boost >= 2 { 5_000 / 64 } else { 5_000 / 128 };
            prop_assert!(sr.stats().swaps >= min_swaps,
                "boost {} produced only {} swaps", boost, sr.stats().swaps);
        }
    }
}
