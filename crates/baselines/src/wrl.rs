//! Wear-Rate Leveling (Dong et al., DAC 2011).
//!
//! The canonical *prediction–swap–running* PV-aware scheme of Fig. 1:
//! a write-number table (WNT) records per-page traffic during a
//! prediction phase; at the phase boundary, predicted-hot logical pages
//! are remapped onto the frames with the most remaining endurance and
//! predicted-cold pages onto the weakest frames; a running phase (10×
//! longer, per the paper) then trusts the prediction.
//!
//! This is exactly the scheme the inconsistent-write attack of §3
//! defeats: the swap phase *publishes* the weak frames by parking the
//! attacker's coldest addresses on them.

use serde::{Deserialize, Serialize};
use twl_pcm::{LogicalPageAddr, PcmDevice, PcmError, PhysicalPageAddr};
use twl_wl_core::{
    ReadOutcome, RemappingTable, WearLeveler, WlStats, WriteCounterTable, WriteOutcome,
};

/// Configuration of [`WearRateLeveling`].
///
/// # Examples
///
/// ```
/// use twl_baselines::WrlConfig;
///
/// let config = WrlConfig::for_pages(1024);
/// assert_eq!(config.running_multiple, 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WrlConfig {
    /// Length of the prediction phase in logical writes.
    pub prediction_writes: u64,
    /// Running phase length as a multiple of the prediction phase
    /// (paper: 10×).
    pub running_multiple: u64,
    /// How many hot→strong and cold→weak pairs to remap per swap phase.
    pub swap_top_k: usize,
    /// Engine cycles per WNT update during prediction.
    pub table_latency: u64,
}

impl WrlConfig {
    /// Defaults scaled to a device of `pages` pages: predict for two
    /// writes per page on average, remap the top eighth.
    #[must_use]
    pub fn for_pages(pages: u64) -> Self {
        Self {
            prediction_writes: (pages * 2).max(64),
            running_multiple: 10,
            swap_top_k: (pages as usize / 8).max(4),
            table_latency: 10,
        }
    }
}

/// Phase of the prediction–swap–running cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Counting writes into the WNT; `remaining` writes left.
    Prediction { remaining: u64 },
    /// Trusting the last prediction; `remaining` writes left.
    Running { remaining: u64 },
}

/// Wear-Rate Leveling (see the module docs above).
#[derive(Debug, Clone)]
pub struct WearRateLeveling {
    config: WrlConfig,
    rt: RemappingTable,
    wnt: WriteCounterTable,
    phase: Phase,
    swap_phases: u64,
    stats: WlStats,
}

impl WearRateLeveling {
    /// Creates the scheme over `pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages == 0`, `swap_top_k * 2 > pages`, or either phase
    /// length is zero.
    #[must_use]
    pub fn new(config: &WrlConfig, pages: u64) -> Self {
        assert!(pages > 0, "device must have pages");
        assert!(
            config.swap_top_k as u64 * 2 <= pages,
            "hot and cold swap sets must not overlap"
        );
        assert!(
            config.prediction_writes > 0 && config.running_multiple > 0,
            "phase lengths must be positive"
        );
        Self {
            config: config.clone(),
            rt: RemappingTable::identity(pages),
            wnt: WriteCounterTable::new(pages),
            phase: Phase::Prediction {
                remaining: config.prediction_writes,
            },
            swap_phases: 0,
            stats: WlStats::new(),
        }
    }

    /// Number of swap phases executed so far.
    #[must_use]
    pub fn swap_phases(&self) -> u64 {
        self.swap_phases
    }

    /// The live remapping table (for invariant tests).
    #[must_use]
    pub fn remapping_table(&self) -> &RemappingTable {
        &self.rt
    }

    /// Executes the swap phase: hot→strong then cold→weak, each pair
    /// migrated with two device writes. Returns `(migrations, blocking)`.
    fn swap_phase(&mut self, device: &mut PcmDevice) -> Result<(u32, u64), PcmError> {
        self.swap_phases += 1;
        let k = self.config.swap_top_k;
        let by_heat = self.wnt.hottest_first();
        // Frames ranked by remaining endurance (wear-rate leveling works
        // on remaining life, not raw endurance).
        let mut frames: Vec<PhysicalPageAddr> =
            (0..self.rt.len()).map(PhysicalPageAddr::new).collect();
        frames.sort_by_key(|&pa| std::cmp::Reverse(device.remaining(pa)));

        let migrate = device.config().timing.migrate_latency();
        let mut migrations = 0u32;
        let mut blocking = 0u64;
        let mut do_swap = |rt: &mut RemappingTable,
                           la: LogicalPageAddr,
                           target: PhysicalPageAddr,
                           device: &mut PcmDevice|
         -> Result<(), PcmError> {
            let current = rt.translate(la);
            if current == target {
                return Ok(());
            }
            // Exchange data of the two frames, then update the table.
            device.write_page(current)?;
            device.write_page(target)?;
            rt.swap_physical(current, target);
            migrations += 2;
            blocking += 2 * migrate;
            Ok(())
        };

        // Hot logical pages onto the strongest frames...
        for i in 0..k {
            do_swap(&mut self.rt, by_heat[i], frames[i], device)?;
        }
        // ...and cold logical pages onto the weakest frames (this is the
        // mapping the inconsistent-write attacker reverse-engineers).
        let n = by_heat.len();
        for i in 0..k {
            do_swap(
                &mut self.rt,
                by_heat[n - 1 - i],
                frames[frames.len() - 1 - i],
                device,
            )?;
        }

        self.wnt.reset_all();
        Ok((migrations, blocking))
    }
}

impl WearLeveler for WearRateLeveling {
    fn name(&self) -> &str {
        "WRL"
    }

    fn page_count(&self) -> u64 {
        self.rt.len()
    }

    fn translate(&self, la: LogicalPageAddr) -> PhysicalPageAddr {
        self.rt.translate(la)
    }

    fn write_batch_cap(&self, wear_margin: u64) -> u64 {
        // One request write plus at most one leveling swap pair per
        // logical write — at most three device writes to any one frame.
        (wear_margin.saturating_sub(1) / 4).max(1)
    }

    fn write(
        &mut self,
        la: LogicalPageAddr,
        device: &mut PcmDevice,
    ) -> Result<WriteOutcome, PcmError> {
        let mut engine_cycles = self.config.table_latency; // RT lookup
        let mut device_writes = 1u32;
        let mut blocking_cycles = 0u64;
        let mut swapped = false;

        let pa = self.rt.translate(la);
        device.write_page(pa)?;

        match self.phase {
            Phase::Prediction { ref mut remaining } => {
                self.wnt.increment(la);
                engine_cycles += self.config.table_latency; // WNT update
                *remaining -= 1;
                if *remaining == 0 {
                    let (migrations, blocking) = self.swap_phase(device)?;
                    device_writes += migrations;
                    blocking_cycles += blocking;
                    swapped = migrations > 0;
                    self.phase = Phase::Running {
                        remaining: self.config.prediction_writes * self.config.running_multiple,
                    };
                }
            }
            Phase::Running { ref mut remaining } => {
                *remaining -= 1;
                if *remaining == 0 {
                    self.phase = Phase::Prediction {
                        remaining: self.config.prediction_writes,
                    };
                }
            }
        }

        let outcome = WriteOutcome {
            pa,
            device_writes,
            swapped,
            engine_cycles,
            blocking_cycles,
        };
        self.stats.record_write(&outcome);
        Ok(outcome)
    }

    fn read(&mut self, la: LogicalPageAddr, device: &PcmDevice) -> Result<ReadOutcome, PcmError> {
        let pa = self.rt.translate(la);
        device.read_page(pa)?;
        Ok(ReadOutcome {
            pa,
            engine_cycles: self.config.table_latency,
        })
    }

    fn stats(&self) -> &WlStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::PcmConfig;
    use twl_rng::{SimRng, Xoshiro256StarStar};

    fn setup(pages: u64) -> (PcmDevice, WearRateLeveling) {
        let pcm = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(1_000_000)
            .seed(8)
            .build()
            .unwrap();
        let device = PcmDevice::new(&pcm);
        let wrl = WearRateLeveling::new(&WrlConfig::for_pages(pages), pages);
        (device, wrl)
    }

    #[test]
    fn hot_pages_land_on_strong_frames_after_swap() {
        let (mut device, mut wrl) = setup(64);
        let hot = LogicalPageAddr::new(7);
        // Make LA7 clearly the hottest through the prediction phase.
        let prediction = wrl.config.prediction_writes;
        for i in 0..prediction {
            let la = if i % 2 == 0 {
                hot
            } else {
                LogicalPageAddr::new(i % 64)
            };
            wrl.write(la, &mut device).unwrap();
        }
        assert_eq!(wrl.swap_phases(), 1);
        // LA7 must now live on the frame with the most remaining life.
        let strongest = (0..64)
            .map(PhysicalPageAddr::new)
            .max_by_key(|&pa| device.remaining(pa))
            .unwrap();
        assert_eq!(wrl.translate(hot), strongest);
        assert!(wrl.remapping_table().is_bijective());
    }

    #[test]
    fn cold_pages_land_on_weak_frames_after_swap() {
        let (mut device, mut wrl) = setup(64);
        // Never write LA63 during prediction: it is maximally cold.
        let prediction = wrl.config.prediction_writes;
        for i in 0..prediction {
            wrl.write(LogicalPageAddr::new(i % 63), &mut device)
                .unwrap();
        }
        assert_eq!(wrl.swap_phases(), 1);
        let weakest = (0..64)
            .map(PhysicalPageAddr::new)
            .min_by_key(|&pa| device.remaining(pa))
            .unwrap();
        // One of the never-written pages occupies the weakest frame; LA63
        // is the coldest by tie-break order only if it sorts last, so
        // check the weakest frame hosts *some* unwritten logical page.
        let resident = wrl.remapping_table().reverse(weakest);
        assert_eq!(
            wrl.wnt.count(resident),
            0,
            "weakest frame must host a cold page"
        );
    }

    #[test]
    fn swap_phase_emits_observable_blocking() {
        let (mut device, mut wrl) = setup(64);
        let prediction = wrl.config.prediction_writes;
        let mut max_blocking = 0;
        for i in 0..prediction + 10 {
            let out = wrl
                .write(LogicalPageAddr::new(i % 32), &mut device)
                .unwrap();
            max_blocking = max_blocking.max(out.blocking_cycles);
        }
        assert!(
            max_blocking >= 2 * device.config().timing.migrate_latency(),
            "the swap phase must block long enough for the attacker to see"
        );
    }

    #[test]
    fn phases_alternate_with_10x_running() {
        let (mut device, mut wrl) = setup(64);
        let p = wrl.config.prediction_writes;
        for i in 0..(p + 10 * p + p) {
            wrl.write(LogicalPageAddr::new(i % 64), &mut device)
                .unwrap();
        }
        assert_eq!(wrl.swap_phases(), 2);
    }

    #[test]
    fn mapping_stays_bijective_under_random_traffic() {
        let (mut device, mut wrl) = setup(128);
        let mut rng = Xoshiro256StarStar::seed_from(21);
        for _ in 0..30_000 {
            wrl.write(LogicalPageAddr::new(rng.next_bounded(128)), &mut device)
                .unwrap();
        }
        assert!(wrl.remapping_table().is_bijective());
        assert_eq!(wrl.stats().device_writes, device.total_writes());
    }

    #[test]
    #[should_panic(expected = "hot and cold swap sets must not overlap")]
    fn oversized_swap_k_panics() {
        let mut config = WrlConfig::for_pages(8);
        config.swap_top_k = 5;
        let _ = WearRateLeveling::new(&config, 8);
    }
}
