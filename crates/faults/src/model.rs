//! The cell-level fault model: per-group wear-out thresholds.

use crate::FaultConfig;
use twl_pcm::{EnduranceMap, PhysicalPageAddr};
use twl_rng::{GaussianSampler, SplitMix64};

/// Precomputed per-group wear-out thresholds for every physical page.
///
/// A page with tested endurance `E` gets `cell_groups_per_page`
/// independent group thresholds drawn from Gaussian(`E`,
/// `group_sigma_fraction` × `E`), clipped below at 1 and sorted
/// ascending. Once the page's wear crosses a group's threshold, that
/// group has a permanent stuck-at fault; the number of faulty groups at
/// any wear level is a simple partition point in the sorted row.
///
/// The draws are keyed on `(config.seed, page index)` only, so a model
/// regenerated with the same seed over the same endurance map is
/// bit-identical regardless of visit order — the determinism contract
/// the proptests pin down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFaultModel {
    thresholds: Vec<u64>,
    groups: u32,
}

impl CellFaultModel {
    /// Draws thresholds for every page in `endurance`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`FaultConfig::validate`]).
    #[must_use]
    pub fn generate(endurance: &EnduranceMap, config: &FaultConfig) -> Self {
        config.validate().expect("invalid fault config");
        let groups = config.cell_groups_per_page as usize;
        let mut thresholds = Vec::with_capacity(endurance.len() * groups);
        for (page, e) in endurance.iter() {
            // A fixed odd multiplier decorrelates per-page streams while
            // keeping the draw independent of visit order.
            let mut rng = SplitMix64::seed_from(
                config
                    .seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(page.index() + 1)),
            );
            let sampler = GaussianSampler::new(e as f64, config.group_sigma_fraction * e as f64);
            let row_start = thresholds.len();
            for _ in 0..groups {
                thresholds.push(sampler.sample_clipped(&mut rng, 1.0).round() as u64);
            }
            thresholds[row_start..].sort_unstable();
        }
        Self {
            thresholds,
            groups: config.cell_groups_per_page,
        }
    }

    /// Cell groups tracked per page.
    #[must_use]
    pub fn groups_per_page(&self) -> u32 {
        self.groups
    }

    /// Number of pages covered.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.thresholds.len() / self.groups as usize
    }

    /// The sorted group thresholds of one page.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    #[must_use]
    pub fn row(&self, page: PhysicalPageAddr) -> &[u64] {
        let g = self.groups as usize;
        let start = page.as_usize() * g;
        &self.thresholds[start..start + g]
    }

    /// Number of groups on `page` that have failed at wear level `wear`.
    ///
    /// A group fails once wear *reaches* its threshold.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    #[must_use]
    pub fn faults_at(&self, page: PhysicalPageAddr, wear: u64) -> u32 {
        self.row(page).partition_point(|&t| t <= wear) as u32
    }

    /// Wear level at which the first group on `page` fails.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    #[must_use]
    pub fn first_fault_wear(&self, page: PhysicalPageAddr) -> u64 {
        self.row(page)[0]
    }

    /// Wear level at which `page` exceeds a correction budget of
    /// `budget` groups (i.e. the `budget + 1`-th group failure), or
    /// `None` if the page never accumulates that many faults.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    #[must_use]
    pub fn uncorrectable_wear(&self, page: PhysicalPageAddr, budget: u32) -> Option<u64> {
        self.row(page).get(budget as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::{EnduranceMap, PcmConfig};

    fn model(pages: u64, seed: u64) -> (EnduranceMap, CellFaultModel) {
        let map = EnduranceMap::generate(&PcmConfig::scaled(pages, 100_000, 1));
        let cfg = FaultConfig {
            seed,
            ..FaultConfig::default()
        };
        let m = CellFaultModel::generate(&map, &cfg);
        (map, m)
    }

    #[test]
    fn rows_are_sorted_and_positive() {
        let (_, m) = model(64, 3);
        for p in 0..64 {
            let row = m.row(PhysicalPageAddr::new(p));
            assert_eq!(row.len(), 64);
            assert!(row[0] >= 1);
            assert!(row.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn faults_accumulate_with_wear() {
        let (_, m) = model(8, 5);
        let p = PhysicalPageAddr::new(2);
        assert_eq!(m.faults_at(p, 0), 0);
        let first = m.first_fault_wear(p);
        assert_eq!(m.faults_at(p, first - 1), 0);
        assert!(m.faults_at(p, first) >= 1);
        assert_eq!(m.faults_at(p, u64::MAX), 64);
        let unc = m.uncorrectable_wear(p, 6).unwrap();
        assert_eq!(m.faults_at(p, unc - 1).min(7), m.faults_at(p, unc - 1));
        assert!(m.faults_at(p, unc) >= 7);
        assert_eq!(m.uncorrectable_wear(p, 64), None);
    }

    #[test]
    fn thresholds_track_page_endurance() {
        let (map, m) = model(256, 9);
        for (p, e) in map.iter() {
            let row = m.row(p);
            let mean = row.iter().sum::<u64>() as f64 / row.len() as f64;
            // 64 draws at sigma 0.05·E: the sample mean sits well
            // within ±5 % of E.
            assert!(
                (mean / e as f64 - 1.0).abs() < 0.05,
                "page {p}: mean {mean} vs endurance {e}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let (_, a) = model(64, 7);
        let (_, b) = model(64, 7);
        let (_, c) = model(64, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
