//! Exact pacing for batched fault absorption.
//!
//! The graceful-degradation driver wants to service thousands of writes
//! per [`FaultEngine::absorb`] call, but the per-write reference
//! semantics observe each fault event — the first corrected group, every
//! retirement — at the exact logical write whose wear crossed the
//! threshold. [`EventHorizon`] reconciles the two: it tracks, for every
//! physical page, how many device writes of wear that page can still
//! take before its *next observable event*, and exposes the minimum over
//! all pages as the batch's **wear margin**. A batch guaranteed to grow
//! no page's wear by `margin` or more (see
//! `WearLeveler::write_batch_cap` in `twl-wl-core`) cannot cross any
//! event mid-batch, so absorbing once at the batch boundary detects
//! exactly what per-write absorption would have — at the same device
//! write count. As wear approaches a threshold the margin shrinks, the
//! driver's batches shrink with it, and the crossing write always runs
//! as a batch of one: the same granularity the per-write loop has.
//!
//! Observable events, by phase:
//!
//! * **First-fault watch** (until any group has been corrected): the
//!   first threshold of every page — the earliest crossing anywhere sets
//!   the report's `first_fault_device_writes`.
//! * **Retirement-only** (afterwards): only the budget-crossing
//!   threshold of each live page. Intermediate group corrections remain
//!   invisible in the report (their totals are recomputed from wear at
//!   absorb time, which is batch-size independent), so they need no
//!   pacing.

use crate::FaultEngine;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use twl_pcm::{PcmDevice, PhysicalPageAddr};

/// Distance sentinel for pages with no further observable events
/// (dead pages, or live pages whose fault budget exceeds their group
/// count).
const NEVER: u64 = u64::MAX;

/// Tracks every page's wear-distance to its next observable fault event
/// and answers "how much single-page wear is safe before the next
/// absorb" in O(log pages).
///
/// Distances only shrink as wear grows, and only pages the fault engine
/// actually touched can have moved, so the structure is a lazy min-heap
/// over a dense distance table: [`EventHorizon::observe`] refreshes the
/// touched pages after each absorb, and [`EventHorizon::wear_margin`]
/// pops stale heap entries until the top matches the table.
#[derive(Debug)]
pub struct EventHorizon {
    /// Current wear-distance to the next event, per physical page.
    dist: Vec<u64>,
    /// Lazy min-heap of `(distance, page)`; entries whose distance no
    /// longer matches `dist` are discarded on pop.
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// Whether the first-fault event has already fired, leaving only
    /// retirements to watch.
    retirement_only: bool,
}

impl EventHorizon {
    /// Builds the horizon for the engine's current fault state and the
    /// device's current wear.
    #[must_use]
    pub fn new(engine: &FaultEngine, device: &PcmDevice) -> Self {
        let pages = engine.model().page_count();
        let mut horizon = Self {
            dist: vec![NEVER; pages],
            heap: BinaryHeap::with_capacity(pages),
            retirement_only: engine.corrected_groups() > 0,
        };
        horizon.rebuild(engine, device);
        horizon
    }

    /// The largest wear growth no single page can reach without
    /// crossing an observable event: a batch that grows every page's
    /// wear by *strictly less than* this is event-free.
    ///
    /// Returns `u64::MAX` when no page has a future event.
    pub fn wear_margin(&mut self) -> u64 {
        while let Some(&Reverse((d, page))) = self.heap.peek() {
            if self.dist[usize::try_from(page).expect("page index fits usize")] == d {
                return d;
            }
            self.heap.pop();
        }
        NEVER
    }

    /// Refreshes the horizon after an absorb: re-derives the distance of
    /// every page the engine touched (including retirement copy-writes)
    /// and switches to retirement-only watching once the first group
    /// correction has happened.
    pub fn observe(&mut self, engine: &FaultEngine, device: &PcmDevice) {
        if !self.retirement_only && engine.corrected_groups() > 0 {
            // First fault fired: every page's next event jumps from its
            // first threshold to its budget-crossing threshold. One full
            // rebuild per run.
            self.retirement_only = true;
            self.rebuild(engine, device);
            return;
        }
        for i in 0..engine.touched().len() {
            let page = engine.touched()[i];
            self.update(page, engine, device);
        }
    }

    /// Recomputes one page's distance and records it in the table and
    /// heap.
    fn update(&mut self, page: PhysicalPageAddr, engine: &FaultEngine, device: &PcmDevice) {
        let d = self.distance(page, engine, device);
        if self.dist[page.as_usize()] != d {
            self.dist[page.as_usize()] = d;
            if d != NEVER {
                self.heap.push(Reverse((d, page.index())));
            }
        }
    }

    /// Wear-distance from `page`'s current wear to its next observable
    /// event under the current phase.
    fn distance(&self, page: PhysicalPageAddr, engine: &FaultEngine, device: &PcmDevice) -> u64 {
        if engine.is_dead(page) {
            return NEVER;
        }
        let threshold = if self.retirement_only {
            engine
                .model()
                .uncorrectable_wear(page, engine.policy().budget())
        } else {
            // Budget-0 policies retire on the very first fault, which is
            // the same threshold the first-fault watch tracks.
            Some(engine.model().first_fault_wear(page))
        };
        let Some(threshold) = threshold else {
            return NEVER;
        };
        let wear = device.wear_counters()[page.as_usize()];
        // A group fails once wear *reaches* its threshold, so a page one
        // short of it has margin 1 — only a single-write batch is safe.
        // An already-crossed threshold (possible only transiently, mid
        // phase switch) degenerates to per-write pacing rather than
        // underflowing.
        threshold.saturating_sub(wear).max(1)
    }

    /// Recomputes every page from scratch (construction and the
    /// first-fault phase switch).
    fn rebuild(&mut self, engine: &FaultEngine, device: &PcmDevice) {
        self.heap.clear();
        for i in 0..self.dist.len() {
            let page = PhysicalPageAddr::new(u64::try_from(i).expect("page count fits u64"));
            let d = self.distance(page, engine, device);
            self.dist[i] = d;
            if d != NEVER {
                self.heap.push(Reverse((d, page.index())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellFaultModel, CorrectionPolicy, FaultConfig};
    use twl_pcm::{PcmConfig, WearPolicy};

    fn setup(spares: u64, entries: u32) -> (PcmDevice, FaultEngine) {
        let pages = 4 + spares;
        let config = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(100)
            .sigma_fraction(0.0)
            .seed(0)
            .build()
            .unwrap();
        let mut device = PcmDevice::new(&config);
        device.set_wear_policy(WearPolicy::Unlimited);
        device.enable_write_log();
        device.set_spare_pool((4..pages).map(PhysicalPageAddr::new).collect());
        let fault_cfg = FaultConfig {
            cell_groups_per_page: 4,
            group_sigma_fraction: 0.2,
            policy: CorrectionPolicy::Ecp { entries },
            seed: 11,
            ..FaultConfig::default()
        };
        let model = CellFaultModel::generate(device.endurance_map(), &fault_cfg);
        let engine = FaultEngine::new(model, fault_cfg.policy);
        (device, engine)
    }

    #[test]
    fn fresh_margin_is_the_earliest_first_fault() {
        let (device, engine) = setup(2, 2);
        let mut horizon = EventHorizon::new(&engine, &device);
        let expected = (0..engine.model().page_count() as u64)
            .map(|p| engine.model().first_fault_wear(PhysicalPageAddr::new(p)))
            .min()
            .unwrap();
        assert_eq!(horizon.wear_margin(), expected.max(1));
    }

    #[test]
    fn margin_shrinks_as_the_watched_page_wears() {
        let (mut device, mut engine) = setup(2, 2);
        let mut horizon = EventHorizon::new(&engine, &device);
        let before = horizon.wear_margin();
        let victim = PhysicalPageAddr::new(0);
        device.write_page_n(victim, before / 2);
        engine.absorb(&mut device).unwrap();
        horizon.observe(&engine, &device);
        let after = horizon.wear_margin();
        assert!(
            after < before,
            "margin {after} did not shrink from {before}"
        );
        // The victim's own distance dropped by exactly the wear added
        // (unless another page's first threshold is still nearer).
        let wear = device.wear_counters()[0];
        let victim_dist = engine.model().first_fault_wear(victim) - wear;
        assert!(after <= victim_dist);
    }

    #[test]
    fn first_fault_switches_to_retirement_watch() {
        let (mut device, mut engine) = setup(2, 2);
        let mut horizon = EventHorizon::new(&engine, &device);
        let victim = PhysicalPageAddr::new(0);
        // Cross the victim's first threshold exactly.
        let first = engine.model().first_fault_wear(victim);
        device.write_page_n(victim, first);
        let report = engine.absorb(&mut device).unwrap();
        assert!(report.corrected_now > 0);
        horizon.observe(&engine, &device);
        // The margin is now the distance to the nearest budget-crossing
        // threshold, not the (already passed) first-fault threshold.
        let budget = engine.policy().budget();
        let expected = (0..engine.model().page_count() as u64)
            .map(PhysicalPageAddr::new)
            .filter_map(|p| {
                let t = engine.model().uncorrectable_wear(p, budget)?;
                Some(
                    t.saturating_sub(device.wear_counters()[p.as_usize()])
                        .max(1),
                )
            })
            .min()
            .unwrap();
        assert_eq!(horizon.wear_margin(), expected);
    }

    #[test]
    fn dead_pages_leave_the_horizon() {
        let (mut device, mut engine) = setup(2, 0);
        let mut horizon = EventHorizon::new(&engine, &device);
        let margin = horizon.wear_margin();
        // Budget 0: the first fault retires the page outright. The
        // margin may belong to a spare, so scan the whole pool.
        let victim = (0..engine.model().page_count() as u64)
            .map(PhysicalPageAddr::new)
            .min_by_key(|&p| engine.model().first_fault_wear(p))
            .unwrap();
        assert_eq!(engine.model().first_fault_wear(victim), margin);
        device.write_page_n(victim, margin);
        let report = engine.absorb(&mut device).unwrap();
        assert_eq!(report.retirements.len(), 1);
        assert!(engine.is_dead(victim));
        horizon.observe(&engine, &device);
        // The new margin belongs to the nearest *live* page (budget 0
        // never corrects, so the watch stays on first thresholds).
        let expected = (0..engine.model().page_count() as u64)
            .map(PhysicalPageAddr::new)
            .filter(|&p| !engine.is_dead(p))
            .map(|p| {
                engine
                    .model()
                    .first_fault_wear(p)
                    .saturating_sub(device.wear_counters()[p.as_usize()])
                    .max(1)
            })
            .min()
            .unwrap();
        assert_eq!(horizon.wear_margin(), expected);
    }
}
