//! The fault engine: drains device writes, advances cell faults,
//! corrects within the policy budget, and retires uncorrectable pages.

use crate::{CellFaultModel, CorrectionPolicy};
use twl_pcm::{PcmDevice, PcmError, PhysicalPageAddr};
use twl_telemetry::{counter, gauge};

/// One page retirement performed during [`FaultEngine::absorb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retirement {
    /// The slot whose backing page went uncorrectable.
    pub slot: PhysicalPageAddr,
    /// The physical page retired.
    pub dead_page: PhysicalPageAddr,
    /// The spare physical page now backing the slot.
    pub spare: PhysicalPageAddr,
}

/// What one [`FaultEngine::absorb`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AbsorbReport {
    /// Cell-group faults newly corrected (within budget) this call.
    pub corrected_now: u64,
    /// Pages retired this call, in order.
    pub retirements: Vec<Retirement>,
}

impl AbsorbReport {
    /// Whether this call observed nothing new.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.corrected_now == 0 && self.retirements.is_empty()
    }
}

/// Tracks cell faults across a device and keeps it serviceable by
/// correcting within the policy budget and retiring pages past it.
///
/// Drive it by enabling the device's write log
/// ([`PcmDevice::enable_write_log`]) and calling
/// [`FaultEngine::absorb`] after every serviced write (or batch): the
/// engine drains the log, advances each touched page's fault count from
/// its wear, and handles budget overflow by retiring the page through
/// [`PcmDevice::retire_page`]. Retirement copy-writes are re-drained in
/// the same call, so a spare that is itself near death cascades
/// correctly.
#[derive(Debug, Clone)]
pub struct FaultEngine {
    model: CellFaultModel,
    policy: CorrectionPolicy,
    budget: u32,
    /// Absorbed (corrected) fault count per physical page.
    faults: Vec<u32>,
    /// Pages declared uncorrectable and retired.
    dead: Vec<bool>,
    corrected_groups: u64,
    uncorrectable_pages: u64,
    scratch: Vec<PhysicalPageAddr>,
}

impl FaultEngine {
    /// Creates an engine over `model` with the given correction policy.
    #[must_use]
    pub fn new(model: CellFaultModel, policy: CorrectionPolicy) -> Self {
        let pages = model.page_count();
        Self {
            model,
            policy,
            budget: policy.budget(),
            faults: vec![0; pages],
            dead: vec![false; pages],
            corrected_groups: 0,
            uncorrectable_pages: 0,
            scratch: Vec::new(),
        }
    }

    /// The fault model thresholds the engine runs on.
    #[must_use]
    pub fn model(&self) -> &CellFaultModel {
        &self.model
    }

    /// The active correction policy.
    #[must_use]
    pub fn policy(&self) -> CorrectionPolicy {
        self.policy
    }

    /// Total cell-group faults corrected so far.
    #[must_use]
    pub fn corrected_groups(&self) -> u64 {
        self.corrected_groups
    }

    /// Pages declared uncorrectable so far.
    #[must_use]
    pub fn uncorrectable_pages(&self) -> u64 {
        self.uncorrectable_pages
    }

    /// Currently-corrected fault count on a physical page.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    #[must_use]
    pub fn faults_on(&self, page: PhysicalPageAddr) -> u32 {
        self.faults[page.as_usize()]
    }

    /// Whether a physical page has been declared uncorrectable.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    #[must_use]
    pub fn is_dead(&self, page: PhysicalPageAddr) -> bool {
        self.dead[page.as_usize()]
    }

    /// The pages the most recent [`FaultEngine::absorb`] drained from
    /// the write log — including retirement copy-writes. May contain
    /// duplicates; empty before the first absorb.
    ///
    /// [`crate::EventHorizon::observe`] uses this to refresh only the
    /// pages whose wear can have moved.
    #[must_use]
    pub fn touched(&self) -> &[PhysicalPageAddr] {
        &self.scratch
    }

    /// Drains the device's write log and advances fault state for every
    /// touched page: newly-failed groups are corrected while the page's
    /// total stays within the policy budget; a page crossing the budget
    /// is retired to a spare. Also refreshes the
    /// `twl.faults.spares_remaining` gauge and the corrected / retired /
    /// uncorrectable counters.
    ///
    /// # Errors
    ///
    /// Returns [`PcmError::SparesExhausted`] when a retirement finds the
    /// spare pool empty — the device's graceful-degradation end of life.
    /// Engine totals ([`FaultEngine::corrected_groups`], …) remain valid
    /// and include everything absorbed before the failure.
    pub fn absorb(&mut self, device: &mut PcmDevice) -> Result<AbsorbReport, PcmError> {
        let mut report = AbsorbReport::default();
        self.scratch.clear();
        device.drain_write_log(&mut self.scratch);
        // Index loop: retirements append their copy-writes to `scratch`.
        let mut i = 0;
        while i < self.scratch.len() {
            let page = self.scratch[i];
            i += 1;
            let p = page.as_usize();
            if self.dead[p] {
                continue;
            }
            let now = self.model.faults_at(page, device.wear_counters()[p]);
            let known = self.faults[p];
            if now <= known {
                continue;
            }
            if now <= self.budget {
                let newly = u64::from(now - known);
                self.faults[p] = now;
                self.corrected_groups += newly;
                report.corrected_now += newly;
                counter!("twl.faults.corrected").add(newly);
                continue;
            }
            // Budget crossed. Credit the groups correction still
            // absorbed on the way over, then retire the page.
            let newly = u64::from(self.budget.saturating_sub(known));
            self.faults[p] = self.budget;
            self.corrected_groups += newly;
            report.corrected_now += newly;
            counter!("twl.faults.corrected").add(newly);
            self.dead[p] = true;
            self.uncorrectable_pages += 1;
            counter!("twl.faults.uncorrectable").inc();
            let slot = device.owner_of(page);
            let spare = device.retire_page(slot).inspect_err(|_| {
                gauge!("twl.faults.spares_remaining").set(device.spares_remaining() as i64);
            })?;
            counter!("twl.faults.retired").inc();
            gauge!("twl.faults.spares_remaining").set(device.spares_remaining() as i64);
            report.retirements.push(Retirement {
                slot,
                dead_page: page,
                spare,
            });
            // The migration copy-write is in the log now; pick it up in
            // this same pass.
            device.drain_write_log(&mut self.scratch);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultConfig;
    use twl_pcm::{PcmConfig, WearPolicy};

    fn tiny_setup(spares: u64) -> (PcmDevice, FaultEngine) {
        // 4 data pages + spares, uniform endurance 100, 4 groups/page.
        let pages = 4 + spares;
        let config = PcmConfig::builder()
            .pages(pages)
            .mean_endurance(100)
            .sigma_fraction(0.0)
            .seed(0)
            .build()
            .unwrap();
        let mut device = PcmDevice::new(&config);
        device.set_wear_policy(WearPolicy::Unlimited);
        device.enable_write_log();
        device.set_spare_pool((4..pages).map(PhysicalPageAddr::new).collect());
        let fault_cfg = FaultConfig {
            cell_groups_per_page: 4,
            group_sigma_fraction: 0.2,
            policy: CorrectionPolicy::Ecp { entries: 2 },
            seed: 11,
            ..FaultConfig::default()
        };
        let model = CellFaultModel::generate(device.endurance_map(), &fault_cfg);
        let engine = FaultEngine::new(model, fault_cfg.policy);
        (device, engine)
    }

    #[test]
    fn quiet_absorb_before_any_fault() {
        let (mut device, mut engine) = tiny_setup(2);
        device.write_page(PhysicalPageAddr::new(0)).unwrap();
        let report = engine.absorb(&mut device).unwrap();
        assert!(report.is_quiet());
        assert_eq!(engine.corrected_groups(), 0);
    }

    #[test]
    fn hammering_one_slot_corrects_then_retires() {
        let (mut device, mut engine) = tiny_setup(2);
        let slot = PhysicalPageAddr::new(1);
        let unc = engine.model().uncorrectable_wear(slot, 2).unwrap();
        let mut retired = Vec::new();
        for _ in 0..2 * unc {
            device.write_page(slot).unwrap();
            let report = engine.absorb(&mut device).unwrap();
            retired.extend(report.retirements);
            if !retired.is_empty() {
                break;
            }
        }
        assert_eq!(retired.len(), 1, "slot's page retires past the budget");
        assert_eq!(retired[0].slot, slot);
        assert_eq!(retired[0].dead_page, slot, "identity map before remap");
        assert!(engine.is_dead(slot));
        assert!(device.is_retired(slot));
        assert_eq!(device.resolve(slot), retired[0].spare);
        // Correction absorbed exactly the budget on the dead page.
        assert_eq!(engine.faults_on(slot), 2);
        assert!(engine.corrected_groups() >= 2);
        assert_eq!(engine.uncorrectable_pages(), 1);
    }

    #[test]
    fn spare_exhaustion_propagates() {
        let (mut device, mut engine) = tiny_setup(2);
        let slot = PhysicalPageAddr::new(0);
        // Hammer one slot through its original page and both spares.
        let result: Result<(), PcmError> = loop {
            if let Err(e) = device.write_page(slot) {
                break Err(e);
            }
            match engine.absorb(&mut device) {
                Ok(_) => {}
                Err(e) => break Err(e),
            }
        };
        assert_eq!(result.unwrap_err(), PcmError::SparesExhausted { slot });
        assert_eq!(device.spares_remaining(), 0);
        assert_eq!(device.retired_pages(), 2);
        assert_eq!(engine.uncorrectable_pages(), 3, "original + both spares");
    }

    #[test]
    fn batch_jump_past_budget_credits_exactly_the_budget() {
        // A page that goes from pristine to way past the budget between
        // two absorbs must still retire exactly once with `budget`
        // groups credited as corrected.
        let (mut device, mut engine) = tiny_setup(2);
        let slot = PhysicalPageAddr::new(3);
        let unc = engine.model().uncorrectable_wear(slot, 2).unwrap();
        for _ in 0..unc + 10 {
            device.write_page(slot).unwrap();
        }
        let report = engine.absorb(&mut device).unwrap();
        assert_eq!(report.retirements.len(), 1);
        assert_eq!(report.corrected_now, 2, "partial credit up to the budget");
        assert_eq!(engine.corrected_groups(), 2);
        assert_eq!(engine.uncorrectable_pages(), 1);
    }
}
