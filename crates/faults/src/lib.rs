#![warn(missing_docs)]

//! `twl-faults`: cell-level fault injection, ECP/SAFER-style correction,
//! and spare-pool page retirement for the `tossup-wl` simulator.
//!
//! The base stack models the DAC'17 methodology, where the first
//! [`twl_pcm::PcmError::PageWornOut`] ends the device's life. Real PCM
//! degrades cell-by-cell and survives long past its first failed bit:
//! error-correcting pointers absorb stuck-at cells, and uncorrectable
//! pages are remapped to spares. This crate adds that graceful
//! degradation as three layers:
//!
//! 1. **Cell fault model** ([`CellFaultModel`]) — every page gets
//!    `cell_groups_per_page` independent wear-out thresholds drawn
//!    around its tested endurance (deterministic per [`FaultConfig`]
//!    seed). Wear crossing a threshold is a permanent stuck-at group
//!    fault.
//! 2. **Correction** ([`CorrectionPolicy`]) — ECP-style entries or
//!    SAFER-style group budgets absorb faults until the per-page budget
//!    is exceeded.
//! 3. **Retirement** ([`FaultEngine`]) — an uncorrectable page is
//!    retired through [`twl_pcm::PcmDevice::retire_page`], transparently
//!    rebinding its slot to a spare so schemes keep running on the
//!    shrunken pool; an empty spare pool
//!    ([`twl_pcm::PcmError::SparesExhausted`]) is the new end of life.
//!
//! [`provision`] wires all three onto a spare-augmented device. The
//! engine publishes `twl.faults.corrected` / `twl.faults.retired` /
//! `twl.faults.uncorrectable` counters and a
//! `twl.faults.spares_remaining` gauge through `twl-telemetry`.
//!
//! # Examples
//!
//! ```
//! use twl_faults::{provision, FaultConfig};
//! use twl_pcm::{PcmConfig, PhysicalPageAddr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data_cfg = PcmConfig::scaled(64, 1_000, 7);
//! let mut domain = provision(&data_cfg, &FaultConfig::default())?;
//! domain.device.write_page(PhysicalPageAddr::new(3))?;
//! let report = domain.engine.absorb(&mut domain.device)?;
//! assert!(report.is_quiet(), "one write causes no faults");
//! # Ok(())
//! # }
//! ```

mod config;
mod engine;
mod horizon;
mod model;
mod provision;

pub use config::{CorrectionPolicy, FaultConfig};
pub use engine::{AbsorbReport, FaultEngine, Retirement};
pub use horizon::EventHorizon;
pub use model::CellFaultModel;
pub use provision::{provision, spare_pages_for, FaultDomain};
