//! Fault-model and correction-policy configuration.

use serde::{Deserialize, Serialize};

/// How many stuck-at cell-group faults a page can absorb before it is
/// declared uncorrectable.
///
/// Both policies are modeled at the granularity the fault model tracks —
/// cell *groups* — so a policy's strength is simply its fault budget:
///
/// * [`CorrectionPolicy::Ecp`] models Error-Correcting Pointers
///   (Schechter et al., ISCA'10): `entries` pointer/replacement-cell
///   pairs per page, each repairing one failed group. ECP-6 is the
///   canonical design point (~12 % overhead at 64-byte lines).
/// * [`CorrectionPolicy::Safer`] models SAFER (Seong et al.,
///   MICRO'10)-style dynamic partitioning: the page is repartitioned so
///   each partition holds at most one failed group, correctable via
///   inversion coding. We adopt the simplification that a SAFER-`k`
///   page survives up to `groups` failed groups; the dynamic
///   repartitioning itself is not simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorrectionPolicy {
    /// ECP-style: one correction entry per failed cell group.
    Ecp {
        /// Correction entries per page.
        entries: u32,
    },
    /// SAFER-style: survives up to `groups` failed groups per page.
    Safer {
        /// Maximum failed groups a page survives.
        groups: u32,
    },
}

impl CorrectionPolicy {
    /// The number of failed groups a page absorbs before becoming
    /// uncorrectable.
    #[must_use]
    pub fn budget(self) -> u32 {
        match self {
            Self::Ecp { entries } => entries,
            Self::Safer { groups } => groups,
        }
    }

    /// Short label for tables and traces (`"ECP6"`, `"SAFER8"`).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Self::Ecp { entries } => format!("ECP{entries}"),
            Self::Safer { groups } => format!("SAFER{groups}"),
        }
    }
}

impl Default for CorrectionPolicy {
    /// ECP-6, the design point of the original ECP paper.
    fn default() -> Self {
        Self::Ecp { entries: 6 }
    }
}

/// Configuration of the cell-level fault model and degradation machinery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Cell groups tracked per page. Each group fails independently once
    /// its own endurance threshold is crossed.
    pub cell_groups_per_page: u32,
    /// Per-group endurance spread as a fraction of the page endurance:
    /// group thresholds are Gaussian(E_page, `group_sigma_fraction` ×
    /// E_page). Intra-page variation is tighter than inter-page
    /// variation (cells on one page share locality), hence the default
    /// well below the device-level 0.11.
    pub group_sigma_fraction: f64,
    /// The correction policy absorbing group faults.
    pub policy: CorrectionPolicy,
    /// Spare pages provisioned per data page (e.g. 0.05 = 5 % spare
    /// capacity). Rounded up to a whole, even page count.
    pub spare_fraction: f64,
    /// Seed for the per-group threshold draws, independent of the
    /// device's endurance-map seed.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            cell_groups_per_page: 64,
            group_sigma_fraction: 0.05,
            policy: CorrectionPolicy::default(),
            spare_fraction: 0.05,
            seed: 0xFA17,
        }
    }
}

impl FaultConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.cell_groups_per_page == 0 {
            return Err("cell_groups_per_page must be positive".into());
        }
        if !(self.group_sigma_fraction.is_finite() && self.group_sigma_fraction >= 0.0) {
            return Err("group_sigma_fraction must be finite and non-negative".into());
        }
        if !(self.spare_fraction.is_finite() && self.spare_fraction > 0.0) {
            return Err("spare_fraction must be finite and positive".into());
        }
        if self.policy.budget() >= self.cell_groups_per_page {
            return Err(format!(
                "correction budget {} must be below cell_groups_per_page {}",
                self.policy.budget(),
                self.cell_groups_per_page
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert_eq!(FaultConfig::default().validate(), Ok(()));
        assert_eq!(CorrectionPolicy::default().budget(), 6);
    }

    #[test]
    fn labels_and_budgets() {
        assert_eq!(CorrectionPolicy::Ecp { entries: 6 }.label(), "ECP6");
        assert_eq!(CorrectionPolicy::Safer { groups: 8 }.label(), "SAFER8");
        assert_eq!(CorrectionPolicy::Safer { groups: 8 }.budget(), 8);
    }

    #[test]
    fn invalid_configs_are_named() {
        let mut c = FaultConfig {
            cell_groups_per_page: 0,
            ..FaultConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("cell_groups_per_page"));
        c.cell_groups_per_page = 4;
        c.policy = CorrectionPolicy::Ecp { entries: 4 };
        assert!(c.validate().unwrap_err().contains("budget"));
        c.policy = CorrectionPolicy::Ecp { entries: 1 };
        c.spare_fraction = 0.0;
        assert!(c.validate().unwrap_err().contains("spare_fraction"));
    }
}
