//! Provisioning: build a spare-augmented device plus its fault engine.

use crate::{CellFaultModel, FaultConfig, FaultEngine};
use twl_pcm::{PcmConfig, PcmDevice, PcmError, PhysicalPageAddr, WearPolicy};

/// A device provisioned for graceful degradation, paired with the fault
/// engine that keeps it serviceable.
///
/// The device holds `data_pages + spare_pages` physical pages; slots
/// `0..data_pages` are the data region wear-leveling schemes address,
/// the tail is the spare pool. Build schemes over the data region only
/// (its endurance map is
/// `device.endurance_map().truncated(data_pages)`).
#[derive(Debug)]
pub struct FaultDomain {
    /// The spare-augmented device: unlimited wear policy, write log
    /// enabled, spare pool installed.
    pub device: PcmDevice,
    /// The fault engine covering every physical page (spares included).
    pub engine: FaultEngine,
    /// Pages in the scheme-addressable data region.
    pub data_pages: u64,
    /// Pages reserved as retirement spares.
    pub spare_pages: u64,
}

/// Number of spare pages a `spare_fraction` buys for `data_pages`,
/// rounded up to a whole even count (the device page total must stay
/// even) and at least 2.
#[must_use]
pub fn spare_pages_for(data_pages: u64, spare_fraction: f64) -> u64 {
    let raw = (data_pages as f64 * spare_fraction).ceil() as u64;
    raw.max(2).next_multiple_of(2)
}

/// Builds a [`FaultDomain`]: a device with `data_cfg.pages` data pages
/// plus a spare tail sized by `fault_cfg.spare_fraction`, running under
/// [`WearPolicy::Unlimited`] with its write log feeding a
/// [`FaultEngine`].
///
/// Because the endurance map draws pages sequentially from the seed, the
/// data region's endurance values are identical to those of a plain
/// `data_cfg` device — adding spares does not perturb the experiment's
/// process variation.
///
/// # Errors
///
/// Returns [`PcmError::InvalidConfig`] if either configuration is
/// invalid.
pub fn provision(data_cfg: &PcmConfig, fault_cfg: &FaultConfig) -> Result<FaultDomain, PcmError> {
    fault_cfg.validate().map_err(PcmError::InvalidConfig)?;
    let data_pages = data_cfg.pages;
    let spare_pages = spare_pages_for(data_pages, fault_cfg.spare_fraction);
    let mut total_cfg = data_cfg.clone();
    total_cfg.pages = data_pages + spare_pages;
    let mut device = PcmDevice::new(&total_cfg);
    device.set_wear_policy(WearPolicy::Unlimited);
    device.enable_write_log();
    device.set_spare_pool(
        (data_pages..data_pages + spare_pages)
            .map(PhysicalPageAddr::new)
            .collect(),
    );
    let model = CellFaultModel::generate(device.endurance_map(), fault_cfg);
    let engine = FaultEngine::new(model, fault_cfg.policy);
    Ok(FaultDomain {
        device,
        engine,
        data_pages,
        spare_pages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::EnduranceMap;

    #[test]
    fn spare_sizing_is_even_and_floored() {
        assert_eq!(spare_pages_for(100, 0.05), 6, "ceil(5) bumped to even");
        assert_eq!(spare_pages_for(100, 0.04), 4);
        assert_eq!(spare_pages_for(4, 0.01), 2, "floor of 2");
    }

    #[test]
    fn provision_preserves_data_region_endurance() {
        let data_cfg = PcmConfig::scaled(64, 10_000, 5);
        let domain = provision(&data_cfg, &FaultConfig::default()).unwrap();
        assert_eq!(domain.data_pages, 64);
        assert_eq!(domain.spare_pages, 4);
        assert_eq!(domain.device.page_count(), 68);
        assert_eq!(domain.device.spares_remaining(), 4);
        let plain = EnduranceMap::generate(&data_cfg);
        assert_eq!(domain.device.endurance_map().truncated(64), plain);
        assert_eq!(domain.engine.model().page_count(), 68);
    }

    #[test]
    fn invalid_fault_config_is_rejected() {
        let data_cfg = PcmConfig::scaled(64, 10_000, 5);
        let bad = FaultConfig {
            spare_fraction: 0.0,
            ..FaultConfig::default()
        };
        assert!(matches!(
            provision(&data_cfg, &bad),
            Err(PcmError::InvalidConfig(_))
        ));
    }
}
