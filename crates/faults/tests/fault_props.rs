//! Property tests for the fault subsystem, pinning down the three
//! invariants ISSUE 2 calls out:
//!
//! * ECP-style correction never "uncorrects": absorbed fault counts and
//!   corrected-group totals only grow, and an uncorrectable verdict
//!   latches.
//! * Retirement preserves logical-address contents across the remap —
//!   modeled with a shadow map of slot contents that must survive every
//!   retirement the engine performs.
//! * The cell-fault model is a pure function of its seed.

use proptest::prelude::*;
use twl_faults::{CellFaultModel, CorrectionPolicy, FaultConfig, FaultEngine};
use twl_pcm::{PcmConfig, PcmDevice, PcmError, PhysicalPageAddr, WearPolicy};

const DATA_PAGES: u64 = 8;
const SPARES: u64 = 6;

/// A tiny domain with aggressive intra-page variation so faults and
/// retirements appear within a few hundred writes.
fn tiny_domain(seed: u64) -> (PcmDevice, FaultEngine) {
    let config = PcmConfig::builder()
        .pages(DATA_PAGES + SPARES)
        .mean_endurance(120)
        .sigma_fraction(0.10)
        .seed(seed)
        .build()
        .unwrap();
    let mut device = PcmDevice::new(&config);
    device.set_wear_policy(WearPolicy::Unlimited);
    device.enable_write_log();
    device.set_spare_pool(
        (DATA_PAGES..DATA_PAGES + SPARES)
            .map(PhysicalPageAddr::new)
            .collect(),
    );
    let fault_cfg = FaultConfig {
        cell_groups_per_page: 8,
        group_sigma_fraction: 0.25,
        policy: CorrectionPolicy::Ecp { entries: 3 },
        seed: seed ^ 0xFA17,
        ..FaultConfig::default()
    };
    let model = CellFaultModel::generate(device.endurance_map(), &fault_cfg);
    let engine = FaultEngine::new(model, fault_cfg.policy);
    (device, engine)
}

proptest! {
    /// Monotone absorption: per-page fault counts, the corrected-group
    /// total, and the uncorrectable-page count never decrease, and a
    /// dead page stays dead.
    #[test]
    fn correction_never_uncorrects(
        seed in 0u64..64,
        writes in proptest::collection::vec(0u64..DATA_PAGES, 1..600),
    ) {
        let (mut device, mut engine) = tiny_domain(seed);
        let pages = device.page_count() as usize;
        let mut prev_faults = vec![0u32; pages];
        let mut prev_dead = vec![false; pages];
        let mut prev_corrected = 0u64;
        let mut prev_uncorrectable = 0u64;
        for &w in &writes {
            device.write_page(PhysicalPageAddr::new(w)).unwrap();
            let exhausted = match engine.absorb(&mut device) {
                Ok(_) => false,
                Err(PcmError::SparesExhausted { .. }) => true,
                Err(e) => panic!("unexpected error: {e}"),
            };
            prop_assert!(engine.corrected_groups() >= prev_corrected);
            prop_assert!(engine.uncorrectable_pages() >= prev_uncorrectable);
            for p in 0..pages {
                let pa = PhysicalPageAddr::new(p as u64);
                prop_assert!(
                    engine.faults_on(pa) >= prev_faults[p],
                    "page {p} faults shrank"
                );
                prop_assert!(!prev_dead[p] || engine.is_dead(pa), "page {p} resurrected");
                prev_faults[p] = engine.faults_on(pa);
                prev_dead[p] = engine.is_dead(pa);
            }
            prev_corrected = engine.corrected_groups();
            prev_uncorrectable = engine.uncorrectable_pages();
            if exhausted {
                break;
            }
        }
    }

    /// Retirement transparency: track each slot's logical contents in a
    /// shadow map; after any number of retirements, every slot still
    /// resolves to a live physical page holding its contents, and no
    /// two slots share a backing page.
    #[test]
    fn retirement_preserves_slot_contents(
        seed in 0u64..64,
        writes in proptest::collection::vec(0u64..DATA_PAGES, 1..600),
    ) {
        let (mut device, mut engine) = tiny_domain(seed);
        // contents[phys] = the slot whose data the physical page holds.
        let mut contents: Vec<Option<u64>> =
            (0..device.page_count()).map(Some).collect();
        for &w in &writes {
            device.write_page(PhysicalPageAddr::new(w)).unwrap();
            match engine.absorb(&mut device) {
                Ok(report) => {
                    for r in &report.retirements {
                        // The device copies the slot's data to the spare.
                        prop_assert_eq!(
                            contents[r.dead_page.as_usize()],
                            Some(r.slot.index()),
                            "retired page did not hold its slot's data"
                        );
                        contents[r.spare.as_usize()] = Some(r.slot.index());
                        contents[r.dead_page.as_usize()] = None;
                    }
                }
                Err(PcmError::SparesExhausted { .. }) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            let mut backing_seen = vec![false; device.page_count() as usize];
            for slot in 0..DATA_PAGES {
                let sa = PhysicalPageAddr::new(slot);
                let phys = device.resolve(sa);
                prop_assert!(!device.is_retired(phys), "slot {slot} backed by a dead page");
                prop_assert_eq!(
                    contents[phys.as_usize()],
                    Some(slot),
                    "slot {} lost its contents across remap",
                    slot
                );
                prop_assert_eq!(device.owner_of(phys), sa);
                prop_assert!(!backing_seen[phys.as_usize()], "two slots share a page");
                backing_seen[phys.as_usize()] = true;
            }
        }
    }

    /// Determinism: the model is a pure function of (endurance map,
    /// fault config), and two identically-seeded domains replaying the
    /// same writes agree on every observable.
    #[test]
    fn fault_model_is_deterministic(
        seed in 0u64..256,
        writes in proptest::collection::vec(0u64..DATA_PAGES, 1..300),
    ) {
        let (mut dev_a, mut eng_a) = tiny_domain(seed);
        let (mut dev_b, mut eng_b) = tiny_domain(seed);
        for p in 0..(DATA_PAGES + SPARES) {
            let pa = PhysicalPageAddr::new(p);
            prop_assert_eq!(eng_a.model().row(pa), eng_b.model().row(pa));
        }
        for &w in &writes {
            let pa = PhysicalPageAddr::new(w);
            dev_a.write_page(pa).unwrap();
            dev_b.write_page(pa).unwrap();
            let ra = eng_a.absorb(&mut dev_a);
            let rb = eng_b.absorb(&mut dev_b);
            prop_assert_eq!(&ra, &rb, "replay diverged");
            if ra.is_err() {
                break;
            }
        }
        prop_assert_eq!(eng_a.corrected_groups(), eng_b.corrected_groups());
        prop_assert_eq!(dev_a.retired_pages(), dev_b.retired_pages());
        prop_assert_eq!(dev_a.total_writes(), dev_b.total_writes());
    }
}
