//! The persistent content-addressed cell cache.
//!
//! One JSON file per cell report, named by its [`CellKey`], sharded
//! into 256 two-hex-character subdirectories. Writes are atomic (tmp
//! file + rename into place), reads verify an embedded SHA-256 of the
//! report payload, and the whole store is LRU-evicted down to a byte
//! budget — so the cache can sit on the same disk for months and at
//! worst *miss*, never replay a torn or corrupted report.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use twl_telemetry::json::{int, str, Json};
use twl_telemetry::{counter, gauge};

use crate::cellkey::CellKey;
use crate::sha256::sha256_hex;

/// The on-disk entry schema; bumped together with breaking layout
/// changes so old daemons never misread new entries.
pub const ENTRY_SCHEMA: &str = "twl-cellcache/v1";

/// One cached report, as handed back by [`CellCache::get`].
#[derive(Debug, Clone, PartialEq)]
pub struct CachedCell {
    /// The encoded cell report (`f64`s round-trip bit-exactly).
    pub report: Json,
    /// Device writes the original execution absorbed.
    pub device_writes: u64,
}

#[derive(Debug)]
struct IndexEntry {
    bytes: u64,
    /// Monotonic use tick; smallest is the LRU victim.
    last_used: u64,
}

#[derive(Debug)]
struct Index {
    entries: HashMap<CellKey, IndexEntry>,
    total_bytes: u64,
    tick: u64,
}

/// A size-bounded, content-addressed store of cell reports.
#[derive(Debug)]
pub struct CellCache {
    dir: PathBuf,
    max_bytes: u64,
    index: Mutex<Index>,
}

impl CellCache {
    /// Opens (creating if needed) a cache rooted at `dir`, holding at
    /// most `max_bytes` of entry files; existing entries are indexed by
    /// scanning the shard directories, seeding the LRU order from file
    /// modification times.
    ///
    /// # Errors
    ///
    /// Propagates directory creation and scan failures.
    pub fn open(dir: &Path, max_bytes: u64) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let mut entries = HashMap::new();
        let mut total_bytes = 0u64;
        let mut mtimes: Vec<(CellKey, u64, std::time::SystemTime)> = Vec::new();
        for shard in fs::read_dir(dir)? {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for file in fs::read_dir(shard.path())? {
                let file = file?;
                let name = file.file_name();
                let Some(key) = name
                    .to_str()
                    .and_then(|n| n.strip_suffix(".json"))
                    .and_then(|n| CellKey::parse(n).ok())
                else {
                    continue;
                };
                let meta = file.metadata()?;
                mtimes.push((
                    key,
                    meta.len(),
                    meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH),
                ));
            }
        }
        // Oldest files get the smallest ticks, so pre-existing entries
        // evict in rough age order until they are used again.
        mtimes.sort_by_key(|(_, _, modified)| *modified);
        let mut tick = 0u64;
        for (key, bytes, _) in mtimes {
            tick += 1;
            total_bytes += bytes;
            entries.insert(
                key,
                IndexEntry {
                    bytes,
                    last_used: tick,
                },
            );
        }
        let cache = Self {
            dir: dir.to_path_buf(),
            max_bytes: max_bytes.max(1),
            index: Mutex::new(Index {
                entries,
                total_bytes,
                tick,
            }),
        };
        cache.publish_size();
        Ok(cache)
    }

    fn entry_path(&self, key: &CellKey) -> PathBuf {
        self.dir
            .join(&key.as_str()[..2])
            .join(format!("{key}.json"))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Index> {
        self.index
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn publish_size(&self) {
        let index = self.lock();
        gauge!("twl.fleet.cache.bytes").set(i64::try_from(index.total_bytes).unwrap_or(i64::MAX));
        gauge!("twl.fleet.cache.entries")
            .set(i64::try_from(index.entries.len()).unwrap_or(i64::MAX));
    }

    /// Looks `key` up, verifying integrity on the way: the entry must
    /// parse, carry the right schema and key, and its report payload
    /// must match the embedded SHA-256. Anything less is deleted and
    /// reported as a miss — a corrupt cache degrades to re-simulation,
    /// never to wrong results.
    #[must_use]
    pub fn get(&self, key: &CellKey) -> Option<CachedCell> {
        {
            let mut index = self.lock();
            if index.entries.contains_key(key) {
                index.tick += 1;
                let tick = index.tick;
                index.entries.get_mut(key).expect("entry exists").last_used = tick;
            } else {
                counter!("twl.fleet.cache.misses").inc();
                return None;
            }
        }
        match self.read_verified(key) {
            Ok(cell) => {
                counter!("twl.fleet.cache.hits").inc();
                Some(cell)
            }
            Err(why) => {
                counter!("twl.fleet.cache.corrupt").inc();
                counter!("twl.fleet.cache.misses").inc();
                eprintln!("twl-fleet: evicting corrupt cache entry {key}: {why}");
                self.remove(key);
                None
            }
        }
    }

    fn read_verified(&self, key: &CellKey) -> Result<CachedCell, String> {
        let text = fs::read_to_string(self.entry_path(key)).map_err(|e| e.to_string())?;
        let doc = Json::parse(&text)?;
        let field = |name: &str| {
            doc.get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("missing `{name}`"))
        };
        if field("schema")? != ENTRY_SCHEMA {
            return Err(format!(
                "schema `{}` is not {ENTRY_SCHEMA}",
                field("schema")?
            ));
        }
        if field("key")? != key.as_str() {
            return Err("entry key does not match its file name".into());
        }
        let report = doc.get("report").ok_or("missing `report`")?.clone();
        let device_writes = doc
            .get("device_writes")
            .and_then(Json::as_u64)
            .ok_or("missing `device_writes`")?;
        let checksum = sha256_hex(report.to_compact().as_bytes());
        if checksum != field("sha256")? {
            return Err("report checksum mismatch".into());
        }
        Ok(CachedCell {
            report,
            device_writes,
        })
    }

    /// Stores a report under `key` atomically, then evicts LRU entries
    /// until the store fits the byte budget again.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; the store is never left with a
    /// partially written entry (the tmp file simply leaks its bytes
    /// until the next open scans past it).
    pub fn put(&self, key: &CellKey, cell: &CachedCell) -> io::Result<()> {
        let doc = Json::obj([
            ("schema", str(ENTRY_SCHEMA)),
            ("key", str(key.as_str())),
            ("report", cell.report.clone()),
            ("device_writes", int(cell.device_writes)),
            (
                "sha256",
                str(&sha256_hex(cell.report.to_compact().as_bytes())),
            ),
        ]);
        let text = doc.to_compact();
        let path = self.entry_path(key);
        fs::create_dir_all(path.parent().expect("entry path has a shard parent"))?;
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, text.as_bytes())?;
        fs::rename(&tmp, &path)?;

        let bytes = text.len() as u64;
        let victims: Vec<CellKey> = {
            let mut index = self.lock();
            index.tick += 1;
            let tick = index.tick;
            if let Some(old) = index.entries.insert(
                key.clone(),
                IndexEntry {
                    bytes,
                    last_used: tick,
                },
            ) {
                index.total_bytes = index.total_bytes.saturating_sub(old.bytes);
            }
            index.total_bytes += bytes;
            counter!("twl.fleet.cache.stores").inc();

            // Evict strictly-least-recently-used entries until the
            // budget holds; the entry just written is the most recent,
            // so it survives unless it alone exceeds the budget.
            let mut victims = Vec::new();
            while index.total_bytes > self.max_bytes && index.entries.len() > 1 {
                let victim = index
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty index");
                let entry = index.entries.remove(&victim).expect("victim exists");
                index.total_bytes = index.total_bytes.saturating_sub(entry.bytes);
                victims.push(victim);
            }
            victims
        };
        for victim in victims {
            counter!("twl.fleet.cache.evictions").inc();
            let _ = fs::remove_file(self.entry_path(&victim));
        }
        self.publish_size();
        Ok(())
    }

    fn remove(&self, key: &CellKey) {
        let mut index = self.lock();
        if let Some(entry) = index.entries.remove(key) {
            index.total_bytes = index.total_bytes.saturating_sub(entry.bytes);
        }
        drop(index);
        let _ = fs::remove_file(self.entry_path(key));
        self.publish_size();
    }

    /// Entries currently indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of entry files currently indexed.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.lock().total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_telemetry::json::num;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("twl-fleet-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(byte: u8) -> CellKey {
        CellKey::parse(&crate::sha256::sha256_hex(&[byte])).unwrap()
    }

    fn cell(years: f64) -> CachedCell {
        CachedCell {
            report: Json::obj([("scheme", str("TWL_swp")), ("years", num(years))]),
            device_writes: 123_456,
        }
    }

    #[test]
    fn put_then_get_round_trips_bit_exactly() {
        let dir = scratch("roundtrip");
        let cache = CellCache::open(&dir, 1 << 20).unwrap();
        let stored = cell(4.256_789_012_345_679);
        cache.put(&key(1), &stored).unwrap();
        let loaded = cache.get(&key(1)).expect("hit");
        assert_eq!(loaded, stored);
        assert_eq!(
            loaded.report.to_compact(),
            stored.report.to_compact(),
            "report bytes drifted through the cache"
        );
        assert!(cache.get(&key(2)).is_none(), "unknown key must miss");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn entries_survive_reopen() {
        let dir = scratch("reopen");
        {
            let cache = CellCache::open(&dir, 1 << 20).unwrap();
            cache.put(&key(1), &cell(1.0)).unwrap();
            cache.put(&key(2), &cell(2.0)).unwrap();
        }
        let cache = CellCache::open(&dir, 1 << 20).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(1)).expect("hit after reopen"), cell(1.0));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let dir = scratch("evict");
        let one_entry = {
            // Measure one entry's size, then budget for roughly two.
            let cache = CellCache::open(&dir, 1 << 20).unwrap();
            cache.put(&key(0), &cell(0.0)).unwrap();
            cache.total_bytes()
        };
        fs::remove_dir_all(&dir).ok();

        let cache = CellCache::open(&dir, one_entry * 2 + 1).unwrap();
        cache.put(&key(1), &cell(1.0)).unwrap();
        cache.put(&key(2), &cell(2.0)).unwrap();
        // Touch 1 so 2 becomes the LRU victim when 3 arrives.
        assert!(cache.get(&key(1)).is_some());
        cache.put(&key(3), &cell(3.0)).unwrap();
        assert!(cache.total_bytes() <= one_entry * 2 + 1, "budget exceeded");
        assert!(cache.get(&key(2)).is_none(), "LRU entry survived");
        assert!(cache.get(&key(1)).is_some(), "recently used entry evicted");
        assert!(cache.get(&key(3)).is_some(), "newest entry evicted");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entries_miss_and_are_deleted() {
        let dir = scratch("corrupt");
        let cache = CellCache::open(&dir, 1 << 20).unwrap();

        // Flipped report bytes: checksum catches it.
        cache.put(&key(1), &cell(1.0)).unwrap();
        let path = cache.entry_path(&key(1));
        let tampered = fs::read_to_string(&path).unwrap().replace("1.0", "9.9");
        fs::write(&path, tampered).unwrap();
        assert!(cache.get(&key(1)).is_none(), "tampered entry served");
        assert!(!path.exists(), "tampered entry not deleted");

        // Truncated file: parse failure, same treatment.
        cache.put(&key(2), &cell(2.0)).unwrap();
        let path = cache.entry_path(&key(2));
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(cache.get(&key(2)).is_none(), "truncated entry served");

        // Entry stored under the wrong name: key check catches it.
        cache.put(&key(3), &cell(3.0)).unwrap();
        let misfiled = cache.entry_path(&key(4));
        fs::create_dir_all(misfiled.parent().unwrap()).unwrap();
        fs::rename(cache.entry_path(&key(3)), &misfiled).unwrap();
        let reopened = CellCache::open(&dir, 1 << 20).unwrap();
        assert!(reopened.get(&key(4)).is_none(), "misfiled entry served");
        fs::remove_dir_all(&dir).ok();
    }
}
