#![warn(missing_docs)]

//! `twl-fleet`: a distributed sweep fabric for the tossup-wl workspace.
//!
//! The `twl-coordinator` daemon speaks the same `twl-wire/v1` protocol
//! as `twl-serviced` — an unchanged `twl-ctl` submits, streams, and
//! cancels against it — but instead of executing cells itself it
//! shards each job's matrix across a fleet of registered `twl-serviced`
//! workers:
//!
//! * **Content-addressed cache first.** Every cell has a stable
//!   [`CellKey`] (the SHA-256 of its canonical simulation inputs);
//!   reports land in an on-disk, size-bounded, integrity-checked
//!   [`CellCache`], so a warm resubmission of a sweep re-simulates
//!   nothing and two overlapping sweeps share entries.
//! * **Work stealing.** Cells stuck on a slow worker past the patience
//!   window are duplicated onto idle slots; cell purity makes the race
//!   safe and the first completion wins.
//! * **Bounded re-dispatch.** A dead or timed-out worker fails the
//!   attempt and the cell re-enters the queue, up to the attempt
//!   budget; past it the job completes as a partial failure naming the
//!   lost cells instead of hanging.
//! * **Streaming.** Cell completions (cache hits included) stream to
//!   the submitting client as they happen, exactly like a single-node
//!   run.
//!
//! The pieces, bottom-up: [`sha256`] (std-only FIPS 180-4 digest),
//! [`cellkey`] (versioned content addressing), [`cache`] (the durable
//! report store), [`dispatch`] (the shared work pool with stealing and
//! retries), and [`coordinator`] (the daemon gluing them to the wire).

pub mod cache;
pub mod cellkey;
pub mod coordinator;
pub mod dispatch;
pub mod sha256;

pub use cache::{CachedCell, CellCache, ENTRY_SCHEMA};
pub use cellkey::{CellKey, SCHEMA};
pub use coordinator::{Coordinator, FleetConfig};
pub use dispatch::{Assignment, Dispatcher};
pub use sha256::{sha256, sha256_hex};
