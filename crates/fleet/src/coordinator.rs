//! The `twl-coordinator` daemon: speaks `twl-wire/v1` to clients (an
//! unchanged `twl-ctl` works pointed at it), shards each submitted
//! job's matrix cells across registered `twl-serviced` workers, and
//! fronts dispatch with the content-addressed [`CellCache`] so a warm
//! resubmission re-simulates nothing.
//!
//! Thread anatomy:
//!
//! * the accept loop, spawning one connection handler per client —
//!   identical protocol surface to `twl-serviced`, plus
//!   `register_worker`;
//! * planner threads, each claiming a job from the shared [`JobQueue`],
//!   resolving every cell against the cache (hits stream to the client
//!   immediately), and parking the misses in the [`Dispatcher`];
//! * per-worker-slot threads, each holding one connection to its
//!   worker and pumping assignments through `run_cell`. The client
//!   read timeout doubles as the dispatch lease: a worker that dies or
//!   stalls past it fails the attempt and the cell re-enters the
//!   queue — bounded by the attempt budget, after which the job
//!   reports a partial failure naming the lost cells.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use twl_service::framing::{read_frame, write_frame};
use twl_service::job::encode_result;
use twl_service::queue::{ClaimedJob, JobQueue, JobStatus};
use twl_service::wire::{Request, Response, PROTOCOL};
use twl_service::{render_metrics_page, stream_job, CellOutcome, Client};
use twl_telemetry::json::Json;
use twl_telemetry::prom::PromWriter;
use twl_telemetry::{counter, gauge};

use crate::cache::{CachedCell, CellCache};
use crate::cellkey::CellKey;
use crate::dispatch::{Assignment, Dispatcher};

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Listen address; port 0 picks a free port.
    pub addr: String,
    /// Workers to register at startup (`host:port` of running
    /// `twl-serviced` daemons); more can join later via
    /// `register_worker`.
    pub workers: Vec<String>,
    /// Where the content-addressed cell cache lives; `None` disables
    /// caching (every cell is simulated).
    pub cache_dir: Option<PathBuf>,
    /// Cache size budget in bytes (least-recently-used entries are
    /// evicted past it).
    pub cache_max_bytes: u64,
    /// Maximum queued (not yet running) jobs before submits are
    /// rejected.
    pub queue_capacity: usize,
    /// Retry hint handed to rejected submitters.
    pub retry_after_ms: u64,
    /// Idle deadline for client connections; 0 disables it.
    pub idle_timeout_ms: u64,
    /// TCP connect deadline when dialing a worker.
    pub connect_timeout_ms: u64,
    /// The dispatch lease: a `run_cell` that a worker has not answered
    /// within this window counts as a broken attempt and the cell is
    /// re-dispatched.
    pub lease_timeout_ms: u64,
    /// How long a cell may sit in flight before an idle slot duplicates
    /// it on another worker (work stealing; first completion wins).
    pub steal_after_ms: u64,
    /// Broken dispatches a cell tolerates before the job reports a
    /// partial failure.
    pub max_attempts: u32,
    /// Planner threads, i.e. jobs planned/awaited concurrently.
    pub planners: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7791".to_owned(),
            workers: Vec::new(),
            cache_dir: None,
            cache_max_bytes: 256 * 1024 * 1024,
            queue_capacity: 32,
            retry_after_ms: 500,
            idle_timeout_ms: 300_000,
            connect_timeout_ms: 5_000,
            lease_timeout_ms: 120_000,
            steal_after_ms: 30_000,
            max_attempts: 3,
            planners: 4,
        }
    }
}

/// One registered worker and its live accounting (rendered as
/// `twl_fleet_worker_*` families on the metrics page).
#[derive(Debug)]
struct WorkerHandle {
    addr: String,
    slots: u64,
    inflight: AtomicI64,
    served: AtomicU64,
    failures: AtomicU64,
}

/// State shared by every coordinator thread.
#[derive(Debug)]
struct Shared {
    queue: Arc<JobQueue>,
    dispatcher: Dispatcher,
    cache: Option<CellCache>,
    workers: Mutex<Vec<Arc<WorkerHandle>>>,
    slot_threads: Mutex<Vec<JoinHandle<()>>>,
    connect_timeout: Duration,
    lease_timeout: Duration,
}

impl Shared {
    fn total_slots(&self) -> u64 {
        self.lock_workers().iter().map(|w| w.slots).sum()
    }

    fn lock_workers(&self) -> std::sync::MutexGuard<'_, Vec<Arc<WorkerHandle>>> {
        self.workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A bound, not-yet-running coordinator.
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
    shared: Arc<Shared>,
    idle_timeout: Option<Duration>,
    planners: usize,
}

impl Coordinator {
    /// Binds the listener, opens the cell cache, and registers the
    /// startup workers. A startup worker that cannot be reached is
    /// reported on stderr and skipped — it can join later via
    /// `register_worker` — so one dead host does not block the fleet.
    ///
    /// # Errors
    ///
    /// Propagates bind and cache-directory failures.
    pub fn bind(config: &FleetConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let cache = match &config.cache_dir {
            Some(dir) => Some(CellCache::open(dir, config.cache_max_bytes)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            queue: Arc::new(JobQueue::new(config.queue_capacity, config.retry_after_ms)),
            dispatcher: Dispatcher::new(
                Duration::from_millis(config.steal_after_ms.max(1)),
                config.max_attempts,
            ),
            cache,
            workers: Mutex::new(Vec::new()),
            slot_threads: Mutex::new(Vec::new()),
            connect_timeout: Duration::from_millis(config.connect_timeout_ms.max(1)),
            lease_timeout: Duration::from_millis(config.lease_timeout_ms.max(1)),
        });
        for addr in &config.workers {
            if let Err(message) = register_worker(&shared, addr) {
                eprintln!("twl-coordinator: skipping startup worker {addr}: {message}");
            }
        }
        Ok(Self {
            listener,
            shared,
            idle_timeout: (config.idle_timeout_ms > 0)
                .then(|| Duration::from_millis(config.idle_timeout_ms)),
            planners: config.planners.max(1),
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the coordinator until a `shutdown` request completes its
    /// drain: planners finish their in-flight jobs, then the dispatcher
    /// releases the worker-slot threads.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop failures.
    pub fn run(self) -> io::Result<()> {
        let local_addr = self.local_addr()?;
        let planner_handles: Vec<_> = (0..self.planners)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                thread::spawn(move || {
                    while let Some(job) = shared.queue.claim() {
                        run_fleet_job(&shared, job);
                    }
                })
            })
            .collect();

        for stream in self.listener.incoming() {
            if self.shared.queue.is_shutting_down() {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            counter!("twl.fleet.connections").inc();
            if let Some(idle) = self.idle_timeout {
                let _ = stream.set_read_timeout(Some(idle));
            }
            let shared = Arc::clone(&self.shared);
            thread::spawn(move || handle_connection(&stream, &shared, local_addr));
        }

        // Planners first (they still need workers to drain in-flight
        // jobs), then the dispatcher frees the slot threads.
        for handle in planner_handles {
            let _ = handle.join();
        }
        self.shared.dispatcher.begin_shutdown();
        let slot_threads: Vec<_> = {
            let mut guard = self
                .shared
                .slot_threads
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.drain(..).collect()
        };
        for handle in slot_threads {
            let _ = handle.join();
        }
        twl_telemetry::flush_sinks();
        Ok(())
    }
}

/// Registers a worker: probes it over `twl-wire/v1` (the `hello_ok`
/// advertises its slot count) and spawns one dispatch thread per slot.
/// Re-registering an already-known address is idempotent.
fn register_worker(shared: &Arc<Shared>, addr: &str) -> Result<u64, String> {
    if let Some(existing) = shared.lock_workers().iter().find(|w| w.addr == addr) {
        return Ok(existing.slots);
    }
    let client = Client::connect_with_timeouts(
        addr,
        Some(shared.connect_timeout),
        Some(shared.lease_timeout),
    )
    .map_err(|e| format!("cannot reach worker {addr}: {e}"))?;
    let slots = client.slots().unwrap_or(1).max(1);
    drop(client);
    let handle = Arc::new(WorkerHandle {
        addr: addr.to_owned(),
        slots,
        inflight: AtomicI64::new(0),
        served: AtomicU64::new(0),
        failures: AtomicU64::new(0),
    });
    shared.lock_workers().push(Arc::clone(&handle));
    counter!("twl.fleet.workers.registered").inc();
    gauge!("twl.fleet.workers.total").add(1);
    gauge!("twl.fleet.slots.total").add(i64::try_from(slots).unwrap_or(i64::MAX));
    let mut threads = shared
        .slot_threads
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for _ in 0..slots {
        let shared = Arc::clone(shared);
        let handle = Arc::clone(&handle);
        threads.push(thread::spawn(move || slot_loop(&shared, &handle)));
    }
    Ok(slots)
}

/// One worker slot: holds (and re-dials as needed) a connection to its
/// worker and pumps dispatcher assignments through `run_cell` until
/// shutdown.
fn slot_loop(shared: &Shared, worker: &WorkerHandle) {
    let mut client: Option<Client> = None;
    let mut consecutive_failures: u32 = 0;
    while let Some(assignment) = shared.dispatcher.next() {
        worker.inflight.fetch_add(1, Ordering::Relaxed);
        gauge!("twl.fleet.cells.inflight").add(1);
        let outcome = run_assignment(shared, worker, &mut client, &assignment);
        gauge!("twl.fleet.cells.inflight").add(-1);
        worker.inflight.fetch_sub(1, Ordering::Relaxed);
        match outcome {
            Ok(()) => consecutive_failures = 0,
            Err(backoff_worthy) => {
                // Back off before claiming again so a dead worker's
                // slots do not hot-loop through the attempt budget
                // while live workers drain the queue.
                if backoff_worthy {
                    consecutive_failures = consecutive_failures.saturating_add(1);
                    let delay = 50u64 << consecutive_failures.min(5);
                    thread::sleep(Duration::from_millis(delay.min(2_000)));
                }
            }
        }
    }
}

/// Runs one assignment against the slot's worker. `Err(true)` means the
/// worker itself misbehaved (connect/transport failure — back off
/// before the next claim); `Ok(())` covers completion, saturation, and
/// lost races alike.
fn run_assignment(
    shared: &Shared,
    worker: &WorkerHandle,
    client: &mut Option<Client>,
    assignment: &Assignment,
) -> Result<(), bool> {
    let Assignment {
        job_id,
        cell,
        spec,
        key,
        ..
    } = assignment;
    if client.is_none() {
        match Client::connect_with_timeouts(
            &worker.addr,
            Some(shared.connect_timeout),
            Some(shared.lease_timeout),
        ) {
            Ok(fresh) => *client = Some(fresh),
            Err(e) => {
                worker.failures.fetch_add(1, Ordering::Relaxed);
                shared.dispatcher.fail_attempt(
                    *job_id,
                    *cell,
                    &format!("worker {}: {e}", worker.addr),
                );
                return Err(true);
            }
        }
    }
    let conn = client.as_mut().expect("connected above");
    match conn.run_cell(spec, *cell) {
        Ok(CellOutcome::Done {
            report,
            device_writes,
        }) => {
            worker.served.fetch_add(1, Ordering::Relaxed);
            if shared
                .dispatcher
                .complete(*job_id, *cell, report.clone(), device_writes)
            {
                if let Some(cache) = &shared.cache {
                    // Best-effort durability: an unwritable cache disk
                    // costs future hits, never the in-flight job.
                    if let Err(e) = cache.put(
                        key,
                        &CachedCell {
                            report: report.clone(),
                            device_writes,
                        },
                    ) {
                        eprintln!("twl-coordinator: cannot cache cell {key}: {e}");
                    }
                }
                let (scheme, workload) =
                    spec.describe_cell(usize::try_from(*cell).expect("cell index fits usize"));
                shared
                    .queue
                    .record_cell(*job_id, *cell, report, scheme, workload, device_writes);
            }
            Ok(())
        }
        Ok(CellOutcome::Saturated { retry_after_ms }) => {
            shared.dispatcher.release_saturated(*job_id, *cell);
            thread::sleep(Duration::from_millis(retry_after_ms.clamp(10, 1_000)));
            Ok(())
        }
        Err(e) => {
            // The connection is suspect (timed-out lease, dead peer,
            // protocol garbage): drop it and re-dial next time.
            *client = None;
            worker.failures.fetch_add(1, Ordering::Relaxed);
            shared
                .dispatcher
                .fail_attempt(*job_id, *cell, &format!("worker {}: {e}", worker.addr));
            Err(true)
        }
    }
}

/// Plans and awaits one claimed job: resolve every cell against the
/// cache, dispatch the misses, stream completions, and assemble the
/// final result (bit-identical to a single-node run, cells in matrix
/// order).
fn run_fleet_job(shared: &Shared, job: ClaimedJob) {
    let job_id = job.job_id;
    shared.queue.mark_running(job_id);
    if shared.lock_workers().is_empty() {
        shared.queue.finish(
            job_id,
            JobStatus::Failed,
            None,
            Some("no workers registered with the coordinator".to_owned()),
        );
        return;
    }
    let spec = Arc::new(job.spec);
    let total = spec.cell_count();
    let mut resolved: Vec<Option<Json>> = vec![None; total];
    let mut dispatched: Vec<u64> = Vec::new();
    for (index, slot) in resolved.iter_mut().enumerate() {
        if job.cancel.load(Ordering::Relaxed) {
            break;
        }
        let cell = index as u64;
        let key = CellKey::of(&spec, index);
        let hit = shared.cache.as_ref().and_then(|cache| cache.get(&key));
        if let Some(hit) = hit {
            let (scheme, workload) = spec.describe_cell(index);
            shared.queue.record_cell(
                job_id,
                cell,
                hit.report.clone(),
                scheme,
                workload,
                hit.device_writes,
            );
            *slot = Some(hit.report);
        } else {
            shared.dispatcher.enqueue(
                job_id,
                cell,
                Arc::clone(&spec),
                key,
                Arc::clone(&job.cancel),
            );
            dispatched.push(cell);
        }
    }
    match shared.dispatcher.wait_job(job_id, &dispatched, &job.cancel) {
        Ok(mut done) => {
            for (cell, (report, _)) in std::mem::take(&mut done) {
                resolved[usize::try_from(cell).expect("cell index fits usize")] = Some(report);
            }
            let reports: Vec<Json> = resolved
                .into_iter()
                .map(|r| r.expect("every cell resolved by cache or dispatch"))
                .collect();
            shared.queue.finish(
                job_id,
                JobStatus::Completed,
                Some(encode_result(spec.kind, reports)),
                None,
            );
        }
        Err(message) => {
            let status = if job.cancel.load(Ordering::Relaxed) {
                JobStatus::Cancelled
            } else {
                JobStatus::Failed
            };
            shared.queue.finish(job_id, status, None, Some(message));
        }
    }
}

/// Renders the scrape page: the shared registry + per-job families
/// (identical shape to `twl-serviced`), then one `twl_fleet_worker_*`
/// gauge row per registered worker.
fn render_fleet_metrics(shared: &Shared) -> String {
    let mut page = render_metrics_page(&shared.queue);
    let workers = shared.lock_workers();
    if workers.is_empty() {
        return page;
    }
    #[allow(clippy::cast_precision_loss)]
    let rows: Vec<(String, f64, f64, f64, f64)> = workers
        .iter()
        .map(|w| {
            (
                w.addr.clone(),
                w.slots as f64,
                w.inflight.load(Ordering::Relaxed) as f64,
                w.served.load(Ordering::Relaxed) as f64,
                w.failures.load(Ordering::Relaxed) as f64,
            )
        })
        .collect();
    drop(workers);
    let mut w = PromWriter::new();
    for (name, pick) in [
        ("twl_fleet_worker_slots", 0usize),
        ("twl_fleet_worker_inflight", 1),
        ("twl_fleet_worker_cells_served", 2),
        ("twl_fleet_worker_failures", 3),
    ] {
        let samples: Vec<([(&str, &str); 1], f64)> = rows
            .iter()
            .map(|(addr, slots, inflight, served, failures)| {
                let value = match pick {
                    0 => *slots,
                    1 => *inflight,
                    2 => *served,
                    _ => *failures,
                };
                ([("worker", addr.as_str())], value)
            })
            .collect();
        let flat: Vec<(&[(&str, &str)], f64)> =
            samples.iter().map(|(l, v)| (l.as_slice(), *v)).collect();
        w.gauge_family(name, &flat);
    }
    page.push_str(&w.finish());
    page
}

fn send(mut stream: &TcpStream, response: &Response) -> io::Result<()> {
    write_frame(&mut stream, &response.to_json())
}

/// Serves one client connection — the same `twl-wire/v1` surface as
/// `twl-serviced`, with `register_worker` served for real and
/// `run_cell` redirected (the coordinator schedules cells, it does not
/// execute them).
fn handle_connection(stream: &TcpStream, shared: &Arc<Shared>, local_addr: SocketAddr) {
    let mut reader = stream;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(twl_service::FrameError::Closed) => return,
            Err(twl_service::FrameError::Io(e)) => {
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) {
                    counter!("twl.fleet.idle_timeouts").inc();
                    let _ = send(
                        stream,
                        &Response::Error {
                            message: "idle timeout: closing connection".to_owned(),
                        },
                    );
                }
                return;
            }
            Err(e) => {
                counter!("twl.fleet.protocol_errors").inc();
                let _ = send(
                    stream,
                    &Response::Error {
                        message: format!("protocol error: {e}"),
                    },
                );
                return;
            }
        };
        let request = match Request::from_json(&frame) {
            Ok(request) => request,
            Err(message) => {
                counter!("twl.fleet.protocol_errors").inc();
                let _ = send(
                    stream,
                    &Response::Error {
                        message: format!("bad request: {message}"),
                    },
                );
                return;
            }
        };
        match request {
            Request::Hello { proto } => {
                if proto == PROTOCOL {
                    let response = Response::HelloOk {
                        proto: PROTOCOL.to_owned(),
                        slots: Some(shared.total_slots()),
                    };
                    if send(stream, &response).is_err() {
                        return;
                    }
                } else {
                    counter!("twl.fleet.protocol_errors").inc();
                    let _ = send(
                        stream,
                        &Response::Error {
                            message: format!(
                                "protocol version mismatch: coordinator speaks {PROTOCOL}, client spoke {proto}"
                            ),
                        },
                    );
                    return;
                }
            }
            Request::Submit { spec } => {
                let response = match spec.validate() {
                    Err(message) => Response::Error {
                        message: format!("invalid spec: {message}"),
                    },
                    Ok(()) => match shared.queue.submit(spec) {
                        Ok(job_id) => Response::Submitted { job_id },
                        Err(rejection) => Response::Rejected {
                            reason: rejection.reason,
                            retry_after_ms: rejection.retry_after_ms,
                        },
                    },
                };
                if send(stream, &response).is_err() {
                    return;
                }
            }
            Request::Status { job_id } => {
                let jobs = shared.queue.snapshot(job_id);
                if send(stream, &Response::StatusOk { jobs }).is_err() {
                    return;
                }
            }
            Request::Stream { job_id } => {
                if !stream_job(stream, &shared.queue, job_id) {
                    return;
                }
            }
            Request::Cancel { job_id } => {
                let response = match shared.queue.cancel(job_id) {
                    None => Response::Error {
                        message: format!("unknown job {job_id}"),
                    },
                    Some(cancelled) => Response::CancelOk { job_id, cancelled },
                };
                if send(stream, &response).is_err() {
                    return;
                }
            }
            Request::Metrics => {
                let text = render_fleet_metrics(shared);
                if send(stream, &Response::MetricsOk { text }).is_err() {
                    return;
                }
            }
            Request::RunCell { .. } => {
                let response = Response::Error {
                    message: "the coordinator schedules cells across workers; submit a job instead"
                        .to_owned(),
                };
                if send(stream, &response).is_err() {
                    return;
                }
            }
            Request::RegisterWorker { addr } => {
                let response = match register_worker(shared, &addr) {
                    Ok(slots) => Response::WorkerOk { addr, slots },
                    Err(message) => Response::Error { message },
                };
                if send(stream, &response).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                shared.queue.begin_shutdown();
                let _ = send(stream, &Response::ShutdownOk);
                // Wake the accept loop so it observes the drain flag.
                let _ = TcpStream::connect(local_addr);
                return;
            }
        }
    }
}

/// Prints the canonical "listening" line (parsed by tests and scripts
/// to discover a port-0 bind) and flushes stdout.
pub fn announce(addr: SocketAddr) {
    use std::io::Write as _;
    println!("twl-coordinator listening on {addr}");
    let _ = io::stdout().flush();
}
