//! Content addressing for matrix cells.
//!
//! A cell is a pure function of the device config, the simulation
//! limits, the scheme, the workload, and (for degradation matrices)
//! the fault model — [`twl_service::JobSpec::run_cell`] depends on
//! nothing else. The [`CellKey`] hashes exactly those inputs, so two
//! jobs that share a cell (same scheme × workload on the same device)
//! share one cache entry even when the surrounding matrices differ.
//!
//! # Schema evolution
//!
//! The descriptor document carries a `schema` field pinned to
//! [`SCHEMA`]. The rules, enforced by the golden fixtures in
//! `tests/fixtures/pr7_cellkeys.json`:
//!
//! * Any change that alters simulation results — new descriptor
//!   fields, canonicalization changes, engine behaviour changes that
//!   shift report bytes — MUST bump the schema version. Old cache
//!   entries then miss (their keys embed the old version) instead of
//!   replaying stale reports.
//! * Fields that do not affect results (matrix shape, sibling cells,
//!   benchmarks of an attack matrix) MUST stay out of the descriptor;
//!   that is what makes the cache shareable across jobs.
//! * Descriptor keys are emitted in the canonical sorted order of
//!   [`Json::to_compact`]; the golden fixtures pin the exact bytes.
//! * Trace cells additionally pin `workload_hash` — the SHA-256 of the
//!   trace file's bytes — because a path is a location, not content:
//!   entries are shared exactly when the replayed writes are identical,
//!   and never across re-captures (pinned by
//!   `tests/fixtures/pr10_cellkeys.json`).

use twl_service::job::JobKind;
use twl_service::JobSpec;
use twl_telemetry::json::{str, Json};
use twl_workloads::{WorkloadKind, WorkloadParams};

use crate::sha256::sha256_hex;

/// The versioned descriptor schema a [`CellKey`] hashes.
pub const SCHEMA: &str = "twl-cellkey/v1";

/// The content address of one matrix cell: the SHA-256 of its
/// canonical descriptor document, as 64 lowercase hex characters.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellKey(String);

impl CellKey {
    /// Computes the key for cell `index` of `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= spec.cell_count()` (same contract as
    /// [`JobSpec::run_cell`]), or if the cell replays a trace whose
    /// file cannot be read (the key pins the trace *content*).
    #[must_use]
    pub fn of(spec: &JobSpec, index: usize) -> Self {
        let descriptor = Self::descriptor(spec, index);
        Self(sha256_hex(descriptor.to_compact().as_bytes()))
    }

    /// The canonical descriptor document the key hashes — exposed so
    /// the golden fixtures can pin its exact bytes.
    ///
    /// # Panics
    ///
    /// Panics if `index >= spec.cell_count()` or if a trace workload's
    /// file cannot be read.
    #[must_use]
    pub fn descriptor(spec: &JobSpec, index: usize) -> Json {
        assert!(index < spec.cell_count(), "cell index out of range");

        // The cell kind follows the *workload family*, not the matrix
        // shape: attack matrices and lifetime runs execute the
        // identical attack cell, so they share a cell kind (and cache
        // entries); synthetic-generator, trace-replay, and degradation
        // cells produce different report shapes or sampling and stay
        // distinct.
        let axis = spec.workload_axis();
        let workload_spec = &axis[index % axis.len()];
        let workload = spec.describe_cell(index).1;
        let cell_kind = match (spec.kind, &workload_spec.kind) {
            (JobKind::DegradationMatrix, _) => "degradation",
            (_, WorkloadKind::Trace) => "trace",
            (_, WorkloadKind::Parsec(_)) => "workload",
            _ => "attack",
        };
        let scheme = spec.schemes[index / axis.len()];

        // Borrow the spec's own wire encoding for the device, limits,
        // and fault sub-documents so the descriptor can never drift
        // from what the worker actually receives. The probe pins the
        // *effective* fault config, so `fault: None` and an explicit
        // default hash identically.
        let mut probe = spec.clone();
        probe.fault = Some(spec.fault_config());
        let encoded = probe.to_json();
        let sub = |key: &str| encoded.get(key).cloned().unwrap_or(Json::Null);

        let mut pairs = vec![
            ("cell_kind", str(cell_kind)),
            ("limits", sub("limits")),
            ("pcm", sub("pcm")),
            ("schema", str(SCHEMA)),
            ("scheme", str(&scheme.canonical().label())),
            ("workload", str(&workload)),
        ];
        if spec.kind == JobKind::DegradationMatrix {
            pairs.push(("fault", sub("fault")));
        }
        // A trace label names a *path*, which is not content: the same
        // path can hold different captures on different machines. The
        // descriptor therefore pins the SHA-256 of the trace bytes, so
        // cache entries are shared exactly when the replayed writes are
        // identical — and never across re-captures.
        if let WorkloadParams::Trace(trace) = &workload_spec.params {
            let bytes = std::fs::read(&trace.path)
                .unwrap_or_else(|e| panic!("cannot hash trace {}: {e}", trace.path));
            pairs.push(("workload_hash", str(&sha256_hex(&bytes))));
        }
        Json::obj(pairs)
    }

    /// The 64-hex-character key text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Parses a key previously produced by [`CellKey::of`] (e.g. a
    /// cache file name).
    ///
    /// # Errors
    ///
    /// Rejects anything that is not exactly 64 lowercase hex
    /// characters.
    pub fn parse(text: &str) -> Result<Self, String> {
        if text.len() == 64
            && text
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        {
            Ok(Self(text.to_owned()))
        } else {
            Err(format!("`{text}` is not a 64-hex-character cell key"))
        }
    }
}

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_attacks::AttackKind;
    use twl_lifetime::{SchemeKind, SimLimits};
    use twl_pcm::PcmConfig;

    fn spec() -> JobSpec {
        JobSpec {
            kind: JobKind::AttackMatrix,
            pcm: PcmConfig::scaled(128, 2_000, 8),
            limits: SimLimits::default(),
            schemes: vec![SchemeKind::Nowl.into(), SchemeKind::TwlSwp.into()],
            attacks: vec![AttackKind::Repeat.into(), AttackKind::Scan.into()],
            benchmarks: vec![],
            fault: None,
        }
    }

    #[test]
    fn keys_are_stable_and_distinct_per_cell() {
        let spec = spec();
        let keys: Vec<CellKey> = (0..spec.cell_count())
            .map(|i| CellKey::of(&spec, i))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(CellKey::of(&spec, i), *key, "cell {i} key unstable");
            assert_eq!(key.as_str().len(), 64);
        }
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "cells {i} and {j} collide");
            }
        }
    }

    #[test]
    fn matrix_shape_does_not_leak_into_the_key() {
        // The same (scheme, attack) cell inside a 2x2 matrix and as a
        // single-cell matrix must share a key — that is what lets two
        // different sweeps share cache entries.
        let big = spec();
        let mut small = spec();
        small.schemes = vec![SchemeKind::TwlSwp.into()];
        small.attacks = vec![AttackKind::Scan.into()];
        // TWL_swp × scan is cell 3 of the 2x2 matrix, cell 0 of the 1x1.
        assert_eq!(CellKey::of(&big, 3), CellKey::of(&small, 0));
    }

    #[test]
    fn lifetime_runs_share_attack_matrix_entries() {
        let mut run = spec();
        run.kind = JobKind::LifetimeRun;
        run.schemes = vec![SchemeKind::Nowl.into()];
        run.attacks = vec![AttackKind::Repeat.into()];
        assert_eq!(CellKey::of(&spec(), 0), CellKey::of(&run, 0));
    }

    #[test]
    fn every_simulation_input_perturbs_the_key() {
        let base = CellKey::of(&spec(), 0);

        let mut other = spec();
        other.pcm = PcmConfig::scaled(128, 2_000, 9);
        assert_ne!(CellKey::of(&other, 0), base, "seed ignored");

        let mut other = spec();
        other.limits = SimLimits {
            max_logical_writes: 1,
        };
        assert_ne!(CellKey::of(&other, 0), base, "limits ignored");

        let mut other = spec();
        other.schemes[0] = "TWL_swp[ti=64]".parse().unwrap();
        assert_ne!(CellKey::of(&other, 0), base, "scheme params ignored");

        // Degradation cells must not collide with attack cells even for
        // the same scheme × attack: their reports decode differently.
        let mut other = spec();
        other.kind = JobKind::DegradationMatrix;
        assert_ne!(CellKey::of(&other, 0), base, "cell kind ignored");
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let key = CellKey::of(&spec(), 0);
        assert_eq!(CellKey::parse(key.as_str()).unwrap(), key);
        assert!(CellKey::parse("deadbeef").is_err());
        assert!(CellKey::parse(&key.as_str().to_uppercase()).is_err());
        assert!(CellKey::parse(&format!("{}x", &key.as_str()[..63])).is_err());
    }
}
