//! `twl-coordinator`: the distributed sweep coordinator.
//!
//! ```text
//! twl-coordinator [--addr HOST:PORT] [--worker HOST:PORT]...
//!                 [--cache-dir DIR] [--cache-max-bytes N]
//!                 [--queue-depth N] [--retry-after-ms N]
//!                 [--idle-timeout-ms N] [--connect-timeout-ms N]
//!                 [--lease-timeout-ms N] [--steal-after-ms N]
//!                 [--max-attempts N] [--planners N]
//! ```
//!
//! * `--addr` defaults to `127.0.0.1:7791`; port 0 picks a free port.
//!   The coordinator prints `twl-coordinator listening on <addr>` once
//!   bound. Point an unchanged `twl-ctl` at this address.
//! * `--worker` (repeatable) registers a running `twl-serviced` at
//!   startup; more workers can join later with
//!   `twl-ctl register-worker`. A startup worker that is down is
//!   skipped with a warning, not fatal.
//! * `--cache-dir` enables the content-addressed cell cache: finished
//!   cell reports persist there keyed by their simulation inputs, so a
//!   resubmitted or overlapping sweep re-simulates nothing.
//!   `--cache-max-bytes` bounds it (default 256 MiB, LRU eviction).
//! * `--lease-timeout-ms` is the dispatch lease: a worker that has not
//!   answered a cell within it is presumed dead and the cell is
//!   re-dispatched (up to `--max-attempts` broken attempts, then the
//!   job reports a partial failure naming the lost cells).
//! * `--steal-after-ms` is the patience window before an idle slot
//!   duplicates a cell still in flight on a slow worker (first
//!   completion wins; cells are pure, so the race is safe).

use std::path::PathBuf;
use std::process::ExitCode;

use twl_fleet::{Coordinator, FleetConfig};

const USAGE: &str = "usage: twl-coordinator [--addr HOST:PORT] [--worker HOST:PORT]... \
[--cache-dir DIR] [--cache-max-bytes N] [--queue-depth N] [--retry-after-ms N] \
[--idle-timeout-ms N] [--connect-timeout-ms N] [--lease-timeout-ms N] [--steal-after-ms N] \
[--max-attempts N] [--planners N]";

fn parse_args(args: &[String]) -> Result<FleetConfig, String> {
    let mut config = FleetConfig::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        fn num<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            raw.parse().map_err(|e| format!("bad {name}: {e}"))
        }
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?.to_owned(),
            "--worker" => config.workers.push(value("--worker")?.to_owned()),
            "--cache-dir" => config.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--cache-max-bytes" => {
                config.cache_max_bytes = num("--cache-max-bytes", value("--cache-max-bytes")?)?;
            }
            "--queue-depth" => {
                config.queue_capacity = num("--queue-depth", value("--queue-depth")?)?;
            }
            "--retry-after-ms" => {
                config.retry_after_ms = num("--retry-after-ms", value("--retry-after-ms")?)?;
            }
            "--idle-timeout-ms" => {
                config.idle_timeout_ms = num("--idle-timeout-ms", value("--idle-timeout-ms")?)?;
            }
            "--connect-timeout-ms" => {
                config.connect_timeout_ms =
                    num("--connect-timeout-ms", value("--connect-timeout-ms")?)?;
            }
            "--lease-timeout-ms" => {
                config.lease_timeout_ms = num("--lease-timeout-ms", value("--lease-timeout-ms")?)?;
            }
            "--steal-after-ms" => {
                config.steal_after_ms = num("--steal-after-ms", value("--steal-after-ms")?)?;
            }
            "--max-attempts" => {
                config.max_attempts = num("--max-attempts", value("--max-attempts")?)?;
            }
            "--planners" => config.planners = num("--planners", value("--planners")?)?,
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(config)
}

fn run(args: &[String]) -> Result<(), String> {
    let config = parse_args(args)?;
    let coordinator =
        Coordinator::bind(&config).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let addr = coordinator.local_addr().map_err(|e| e.to_string())?;
    twl_fleet::coordinator::announce(addr);
    coordinator
        .run()
        .map_err(|e| format!("coordinator failed: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
