//! The cell dispatcher: a shared work pool that shards matrix cells
//! across worker connections, duplicates cells stuck on slow workers
//! (work stealing), and re-dispatches cells whose worker died —
//! bounded by a per-cell attempt budget, after which the owning job
//! reports a partial failure naming the cells that never ran.
//!
//! Correctness rests on cell purity: a cell is a deterministic function
//! of `(spec, index)`, so racing duplicates are safe — the first
//! completion wins and every later one is discarded.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use twl_service::JobSpec;
use twl_telemetry::counter;
use twl_telemetry::json::Json;

use crate::cellkey::CellKey;

/// At most this many simultaneous dispatches of one cell: the original
/// plus one stolen duplicate. More buys nothing — a third copy only
/// burns a slot the duplicate already covers.
const MAX_DUPLICATES: u32 = 2;

/// One cell handed to a worker-connection thread.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// The owning job.
    pub job_id: u64,
    /// The cell index within the job's matrix.
    pub cell: u64,
    /// The job spec (shared, cells of one job reference one copy).
    pub spec: Arc<JobSpec>,
    /// The cell's content address (for the cache write-back).
    pub key: CellKey,
    /// Whether this dispatch duplicates one already in flight.
    pub stolen: bool,
}

#[derive(Debug)]
struct Task {
    spec: Arc<JobSpec>,
    key: CellKey,
    cancel: Arc<AtomicBool>,
    /// Failed attempts so far (saturation and steals do not count).
    attempts: u32,
    /// Dispatches currently in flight (1, or 2 with a stolen duplicate).
    dispatches: u32,
    /// When the oldest in-flight dispatch started (steal eligibility).
    started: Option<Instant>,
    outcome: Option<Result<(Json, u64), String>>,
}

#[derive(Debug)]
struct State {
    ready: VecDeque<(u64, u64)>,
    tasks: BTreeMap<(u64, u64), Task>,
    shutting_down: bool,
}

/// The shared dispatch pool (see the module docs).
#[derive(Debug)]
pub struct Dispatcher {
    state: Mutex<State>,
    /// Wakes worker-connection threads waiting for an assignment.
    work: Condvar,
    /// Wakes planners waiting for a job's cells to finish.
    finished: Condvar,
    steal_after: Duration,
    max_attempts: u32,
}

impl Dispatcher {
    /// Creates a dispatcher that duplicates cells in flight longer than
    /// `steal_after` and fails a cell after `max_attempts` broken
    /// dispatches.
    #[must_use]
    pub fn new(steal_after: Duration, max_attempts: u32) -> Self {
        Self {
            state: Mutex::new(State {
                ready: VecDeque::new(),
                tasks: BTreeMap::new(),
                shutting_down: false,
            }),
            work: Condvar::new(),
            finished: Condvar::new(),
            steal_after,
            max_attempts: max_attempts.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Queues one cell for remote execution.
    pub fn enqueue(
        &self,
        job_id: u64,
        cell: u64,
        spec: Arc<JobSpec>,
        key: CellKey,
        cancel: Arc<AtomicBool>,
    ) {
        let mut state = self.lock();
        state.tasks.insert(
            (job_id, cell),
            Task {
                spec,
                key,
                cancel,
                attempts: 0,
                dispatches: 0,
                started: None,
                outcome: None,
            },
        );
        state.ready.push_back((job_id, cell));
        drop(state);
        self.work.notify_one();
    }

    /// Blocks until a cell is available and claims it: a ready cell
    /// first, otherwise a steal of the longest-overdue in-flight cell.
    /// Returns `None` once the dispatcher is shutting down.
    pub fn next(&self) -> Option<Assignment> {
        let mut state = self.lock();
        loop {
            if state.shutting_down {
                return None;
            }
            // Drain cancelled cells without dispatching them.
            while let Some(id) = state.ready.pop_front() {
                let task = state.tasks.get_mut(&id).expect("ready task exists");
                if task.cancel.load(Ordering::Relaxed) {
                    if task.outcome.is_none() && task.dispatches == 0 {
                        task.outcome = Some(Err("job cancelled".to_owned()));
                        self.finished.notify_all();
                    }
                    continue;
                }
                task.dispatches += 1;
                task.started.get_or_insert_with(Instant::now);
                let assignment = Assignment {
                    job_id: id.0,
                    cell: id.1,
                    spec: Arc::clone(&task.spec),
                    key: task.key.clone(),
                    stolen: false,
                };
                counter!("twl.fleet.cells.dispatched").inc();
                return Some(assignment);
            }
            // Nothing ready: look for a steal — an unfinished cell that
            // has sat on one worker past the patience window.
            let now = Instant::now();
            let victim = state
                .tasks
                .iter()
                .filter(|(_, t)| {
                    t.outcome.is_none()
                        && t.dispatches >= 1
                        && t.dispatches < MAX_DUPLICATES
                        && !t.cancel.load(Ordering::Relaxed)
                        && t.started
                            .is_some_and(|s| now.duration_since(s) >= self.steal_after)
                })
                .min_by_key(|(_, t)| t.started)
                .map(|(&id, _)| id);
            if let Some(id) = victim {
                let task = state.tasks.get_mut(&id).expect("victim exists");
                task.dispatches += 1;
                let assignment = Assignment {
                    job_id: id.0,
                    cell: id.1,
                    spec: Arc::clone(&task.spec),
                    key: task.key.clone(),
                    stolen: true,
                };
                counter!("twl.fleet.cells.stolen").inc();
                return Some(assignment);
            }
            // Wake periodically so steal eligibility is re-checked even
            // when no new work arrives.
            let poll = self
                .steal_after
                .min(Duration::from_millis(500))
                .max(Duration::from_millis(10));
            state = self
                .work
                .wait_timeout(state, poll)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }

    /// Records a finished dispatch. Returns `true` only for the first
    /// completion of the cell — the caller records the report (queue,
    /// cache) exactly once; late duplicates are discarded.
    pub fn complete(&self, job_id: u64, cell: u64, report: Json, device_writes: u64) -> bool {
        let mut state = self.lock();
        let Some(task) = state.tasks.get_mut(&(job_id, cell)) else {
            return false;
        };
        task.dispatches = task.dispatches.saturating_sub(1);
        if task.outcome.is_some() {
            return false;
        }
        task.outcome = Some(Ok((report, device_writes)));
        counter!("twl.fleet.cells.completed").inc();
        drop(state);
        self.finished.notify_all();
        true
    }

    /// Records a broken dispatch (worker died, lease expired, transport
    /// error). Once no duplicate remains in flight the cell re-enters
    /// the ready queue, until the attempt budget runs out and the cell
    /// fails for good.
    pub fn fail_attempt(&self, job_id: u64, cell: u64, error: &str) {
        let mut state = self.lock();
        let Some(task) = state.tasks.get_mut(&(job_id, cell)) else {
            return;
        };
        task.dispatches = task.dispatches.saturating_sub(1);
        if task.outcome.is_some() || task.dispatches > 0 {
            // A duplicate is still running (or the cell already
            // finished) — this broken dispatch costs nothing.
            return;
        }
        task.attempts += 1;
        task.started = None;
        if task.attempts >= self.max_attempts {
            counter!("twl.fleet.cells.failed").inc();
            task.outcome = Some(Err(format!(
                "cell {cell} failed after {} attempts: {error}",
                task.attempts
            )));
            drop(state);
            self.finished.notify_all();
        } else {
            counter!("twl.fleet.cells.retried").inc();
            state.ready.push_back((job_id, cell));
            drop(state);
            self.work.notify_one();
        }
    }

    /// Returns a dispatch the worker refused for saturation — not a
    /// failure, so the attempt budget is untouched; the cell simply
    /// re-enters the queue for the next free slot.
    pub fn release_saturated(&self, job_id: u64, cell: u64) {
        let mut state = self.lock();
        let Some(task) = state.tasks.get_mut(&(job_id, cell)) else {
            return;
        };
        task.dispatches = task.dispatches.saturating_sub(1);
        if task.outcome.is_some() || task.dispatches > 0 {
            return;
        }
        task.started = None;
        counter!("twl.fleet.cells.saturated").inc();
        state.ready.push_back((job_id, cell));
        drop(state);
        self.work.notify_one();
    }

    /// Blocks until every listed cell of `job_id` has an outcome (or
    /// the job's cancel flag is raised), removes the job's tasks, and
    /// returns the collected reports — or the partial-failure message
    /// naming every cell that never produced one.
    ///
    /// # Errors
    ///
    /// Returns the combined failure message when any cell failed or the
    /// job was cancelled.
    pub fn wait_job(
        &self,
        job_id: u64,
        cells: &[u64],
        cancel: &AtomicBool,
    ) -> Result<BTreeMap<u64, (Json, u64)>, String> {
        let mut state = self.lock();
        loop {
            if cancel.load(Ordering::Relaxed) {
                // Purge the job's unfinished cells; in-flight duplicates
                // will find their task gone and discard their result.
                state.ready.retain(|&(job, _)| job != job_id);
                state.tasks.retain(|&(job, _), _| job != job_id);
                drop(state);
                self.work.notify_all();
                return Err("job cancelled".to_owned());
            }
            let pending = cells
                .iter()
                .any(|&cell| match state.tasks.get(&(job_id, cell)) {
                    Some(task) => task.outcome.is_none(),
                    None => false,
                });
            if !pending {
                let mut reports = BTreeMap::new();
                let mut failures = Vec::new();
                for &cell in cells {
                    match state.tasks.remove(&(job_id, cell)).and_then(|t| t.outcome) {
                        Some(Ok(done)) => {
                            reports.insert(cell, done);
                        }
                        Some(Err(message)) => failures.push(message),
                        None => failures.push(format!("cell {cell} was never dispatched")),
                    }
                }
                if failures.is_empty() {
                    return Ok(reports);
                }
                return Err(format!(
                    "{} of {} cells failed: {}",
                    failures.len(),
                    cells.len(),
                    failures.join("; ")
                ));
            }
            // A bounded wait so a cancel raised while nothing finishes
            // is still observed promptly.
            state = self
                .finished
                .wait_timeout(state, Duration::from_millis(100))
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }

    /// Stops the pool: `next` returns `None` to every worker thread.
    /// Call only after planners drained — in-flight jobs would
    /// otherwise starve.
    pub fn begin_shutdown(&self) {
        let mut state = self.lock();
        state.shutting_down = true;
        drop(state);
        self.work.notify_all();
        self.finished.notify_all();
    }

    /// Cells currently waiting for a worker slot.
    #[must_use]
    pub fn ready_depth(&self) -> usize {
        self.lock().ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_attacks::AttackKind;
    use twl_lifetime::{SchemeKind, SimLimits};
    use twl_pcm::PcmConfig;
    use twl_service::job::JobKind;

    fn spec() -> Arc<JobSpec> {
        Arc::new(JobSpec {
            kind: JobKind::AttackMatrix,
            pcm: PcmConfig::scaled(64, 500, 3),
            limits: SimLimits::default(),
            schemes: vec![SchemeKind::Nowl.into()],
            attacks: vec![AttackKind::Repeat.into(), AttackKind::Scan.into()],
            benchmarks: vec![],
            fault: None,
        })
    }

    fn enqueue_cell(d: &Dispatcher, job: u64, cell: u64) -> Arc<AtomicBool> {
        let cancel = Arc::new(AtomicBool::new(false));
        d.enqueue(
            job,
            cell,
            spec(),
            CellKey::of(&spec(), cell as usize),
            Arc::clone(&cancel),
        );
        cancel
    }

    #[test]
    fn complete_reports_first_dispatch_only() {
        let d = Dispatcher::new(Duration::from_secs(60), 3);
        enqueue_cell(&d, 1, 0);
        let a = d.next().unwrap();
        assert!(!a.stolen);
        assert!(d.complete(1, 0, Json::Null, 10), "first completion wins");
        assert!(!d.complete(1, 0, Json::Null, 10), "duplicate discarded");
        let done = d
            .wait_job(1, &[0], &AtomicBool::new(false))
            .expect("job completes");
        assert_eq!(done.get(&0), Some(&(Json::Null, 10)));
    }

    #[test]
    fn broken_dispatches_retry_then_fail_with_cell_names() {
        let d = Dispatcher::new(Duration::from_secs(60), 2);
        enqueue_cell(&d, 1, 1);
        for _ in 0..2 {
            let a = d.next().unwrap();
            assert_eq!((a.job_id, a.cell), (1, 1));
            d.fail_attempt(1, 1, "worker hung up");
        }
        let err = d
            .wait_job(1, &[1], &AtomicBool::new(false))
            .expect_err("attempt budget exhausted");
        assert!(err.contains("cell 1"), "failure names the cell: {err}");
        assert!(
            err.contains("worker hung up"),
            "failure keeps the cause: {err}"
        );
    }

    #[test]
    fn saturation_requeues_without_burning_attempts() {
        let d = Dispatcher::new(Duration::from_secs(60), 1);
        enqueue_cell(&d, 1, 0);
        // With a budget of one attempt, any counted failure would kill
        // the cell — saturation must not.
        for _ in 0..5 {
            let a = d.next().unwrap();
            d.release_saturated(a.job_id, a.cell);
        }
        let a = d.next().unwrap();
        assert!(d.complete(a.job_id, a.cell, Json::Null, 1));
        assert!(d.wait_job(1, &[0], &AtomicBool::new(false)).is_ok());
    }

    #[test]
    fn overdue_cells_are_stolen_and_first_completion_wins() {
        let d = Dispatcher::new(Duration::from_millis(1), 3);
        enqueue_cell(&d, 1, 0);
        let original = d.next().unwrap();
        assert!(!original.stolen);
        std::thread::sleep(Duration::from_millis(5));
        let duplicate = d.next().unwrap();
        assert!(duplicate.stolen, "overdue cell was not stolen");
        assert_eq!((duplicate.job_id, duplicate.cell), (1, 0));
        // The duplicate finishes first; the original's late failure
        // must not resurrect the cell.
        assert!(d.complete(1, 0, Json::Null, 7));
        d.fail_attempt(1, 0, "original worker timed out");
        let done = d.wait_job(1, &[0], &AtomicBool::new(false)).unwrap();
        assert_eq!(done.get(&0), Some(&(Json::Null, 7)));
    }

    #[test]
    fn cancel_drains_pending_cells() {
        let d = Dispatcher::new(Duration::from_secs(60), 3);
        let cancel = enqueue_cell(&d, 1, 0);
        cancel.store(true, Ordering::Relaxed);
        let err = d.wait_job(1, &[0], &cancel).expect_err("cancelled");
        assert!(err.contains("cancelled"));
        assert_eq!(d.ready_depth(), 0);
    }
}
