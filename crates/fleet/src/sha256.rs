//! A std-only SHA-256 (FIPS 180-4) for content-addressing cell
//! reports. The build environment has no registry access, so the
//! workspace carries its own implementation; the test vectors below pin
//! it against the published NIST values.

/// Round constants: the first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Initial hash values: the first 32 bits of the fractional parts of
/// the square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

fn compress(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = s.wrapping_add(v);
    }
}

/// The SHA-256 digest of `data`.
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut state = H0;
    let mut blocks = data.chunks_exact(64);
    for block in &mut blocks {
        compress(&mut state, block);
    }

    // Padding: 0x80, zeros, then the bit length as a 64-bit BE integer,
    // spilling into a second block when the tail is 56 bytes or longer.
    let tail = blocks.remainder();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut last = [0u8; 128];
    last[..tail.len()].copy_from_slice(tail);
    last[tail.len()] = 0x80;
    let end = if tail.len() < 56 { 64 } else { 128 };
    last[end - 8..end].copy_from_slice(&bit_len.to_be_bytes());
    for block in last[..end].chunks_exact(64) {
        compress(&mut state, block);
    }

    let mut digest = [0u8; 32];
    for (chunk, word) in digest.chunks_exact_mut(4).zip(state) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    digest
}

/// The SHA-256 digest of `data` as 64 lowercase hex characters.
#[must_use]
pub fn sha256_hex(data: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let digest = sha256(data);
    let mut out = String::with_capacity(64);
    for byte in digest {
        out.push(HEX[usize::from(byte >> 4)] as char);
        out.push(HEX[usize::from(byte & 0x0f)] as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The NIST FIPS 180-4 / SHA test-vector values.
    #[test]
    fn nist_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    /// Exercises every padding branch: tails of 55, 56, 63, 64 bytes.
    #[test]
    fn padding_boundaries() {
        assert_eq!(
            sha256_hex(&[b'a'; 55]),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"
        );
        assert_eq!(
            sha256_hex(&[b'a'; 56]),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
        );
        assert_eq!(
            sha256_hex(&[b'a'; 64]),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
        // 1,000,000 × 'a': the classic long-message vector.
        let million = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256_hex(&million),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }
}
