//! Golden-fixture pin of the `twl-cellkey/v1` content address.
//!
//! `tests/fixtures/pr7_cellkeys.json` stores, for one representative
//! cell of each matrix kind, the exact canonical descriptor bytes and
//! the resulting key. These bytes are a compatibility contract: cache
//! entries written by one build must hit under every later build, so
//! any change that moves them MUST bump [`twl_fleet::cellkey::SCHEMA`]
//! (and regenerate this fixture under the new version) rather than
//! silently re-keying — see the schema-evolution rules on the
//! `cellkey` module.

use twl_attacks::AttackKind;
use twl_fleet::{sha256_hex, CellKey};
use twl_lifetime::{SchemeKind, SimLimits};
use twl_pcm::PcmConfig;
use twl_service::job::JobKind;
use twl_service::JobSpec;
use twl_telemetry::json::Json;
use twl_workloads::{ParsecBenchmark, WorkloadSpec};

const GOLDEN: &str = include_str!("fixtures/pr7_cellkeys.json");

/// PR-10 additions to the same `twl-cellkey/v1` keyspace: cells whose
/// workload carries parameter overrides, and a trace-replay cell (which
/// pins a `workload_hash` over `fixtures/pr10_capture.trace`).
const GOLDEN_PR10: &str = include_str!("fixtures/pr10_cellkeys.json");

/// The committed capture the trace cell replays; its *content* hash is
/// part of the pinned descriptor.
const FIXTURE_TRACE: &str = "tests/fixtures/pr10_capture.trace";

/// The named cells the fixture pins, one per descriptor shape: a plain
/// attack-matrix cell, a lifetime run (which must share the attack
/// keyspace), a workload cell, and a degradation cell (which carries
/// the fault sub-document).
fn fixture_cells() -> Vec<(&'static str, JobSpec, usize)> {
    let base = JobSpec {
        kind: JobKind::AttackMatrix,
        pcm: PcmConfig::scaled(128, 2_000, 8),
        limits: SimLimits::default(),
        schemes: vec![SchemeKind::Nowl.into(), SchemeKind::TwlSwp.into()],
        attacks: vec![AttackKind::Repeat.into(), AttackKind::Scan.into()],
        benchmarks: vec![],
        fault: None,
    };
    let mut lifetime = base.clone();
    lifetime.kind = JobKind::LifetimeRun;
    lifetime.schemes = vec![SchemeKind::TwlSwp.into()];
    lifetime.attacks = vec![AttackKind::Scan.into()];
    let mut workload = base.clone();
    workload.kind = JobKind::WorkloadMatrix;
    workload.attacks = vec![];
    workload.benchmarks = vec![ParsecBenchmark::ALL[0].into()];
    let mut degradation = base.clone();
    degradation.kind = JobKind::DegradationMatrix;
    vec![
        ("attack__twl_swp_x_scan", base, 3),
        ("lifetime_run__twl_swp_x_scan", lifetime, 0),
        ("workload__nowl_x_first_benchmark", workload, 0),
        ("degradation__nowl_x_repeat", degradation, 0),
    ]
}

/// The PR-10 cells: a parameterized attack workload under a
/// parameterized scheme, and a trace replay of the committed capture.
fn fixture_cells_pr10() -> Vec<(&'static str, JobSpec, usize)> {
    let mut param = fixture_cells()[0].1.clone();
    param.schemes = vec!["TWL_swp[ti=64]".parse().expect("scheme label")];
    param.attacks = vec!["inconsistent[group=8,stride=16]"
        .parse::<WorkloadSpec>()
        .expect("workload label")];
    let mut trace = fixture_cells()[0].1.clone();
    trace.schemes = vec![SchemeKind::TwlSwp.into()];
    trace.attacks = vec![format!("TRACE[path={FIXTURE_TRACE},seed=3]")
        .parse::<WorkloadSpec>()
        .expect("trace label")];
    vec![
        ("param__twl_swp_ti64_x_inconsistent_g8_s16", param, 0),
        ("trace__twl_swp_x_pr10_capture", trace, 0),
    ]
}

fn assert_golden(golden_text: &str, cells: Vec<(&'static str, JobSpec, usize)>) {
    let golden = Json::parse(golden_text).expect("fixture parses");
    let entries = match golden.get("entries") {
        Some(Json::Arr(entries)) => entries,
        other => panic!("fixture has no entries array: {other:?}"),
    };
    assert_eq!(entries.len(), cells.len(), "fixture/spec count mismatch");
    for ((name, spec, index), entry) in cells.into_iter().zip(entries) {
        assert_eq!(
            entry.get("name").and_then(Json::as_str),
            Some(name),
            "fixture order drifted"
        );
        let descriptor = CellKey::descriptor(&spec, index).to_compact();
        assert_eq!(
            entry.get("descriptor").and_then(Json::as_str),
            Some(descriptor.as_str()),
            "{name}: canonical descriptor bytes moved — this re-keys every \
             cache entry; bump the cellkey schema version instead"
        );
        let key = CellKey::of(&spec, index);
        assert_eq!(
            entry.get("key").and_then(Json::as_str),
            Some(key.as_str()),
            "{name}: key drifted from its pinned value"
        );
        // The fixture is self-consistent: the pinned key IS the SHA-256
        // of the pinned descriptor bytes.
        assert_eq!(key.as_str(), sha256_hex(descriptor.as_bytes()), "{name}");
    }
}

#[test]
fn golden_cellkeys_are_byte_identical() {
    assert_golden(GOLDEN, fixture_cells());
}

#[test]
fn golden_pr10_cellkeys_are_byte_identical() {
    assert_golden(GOLDEN_PR10, fixture_cells_pr10());
}

/// The trace descriptor pins the capture's *content*: the
/// `workload_hash` field is the SHA-256 of the file bytes, and changing
/// those bytes re-keys the cell even though the label (and path) is
/// unchanged.
#[test]
fn trace_cellkeys_pin_content_not_path() {
    let (_, spec, index) = fixture_cells_pr10().remove(1);
    let descriptor = CellKey::descriptor(&spec, index);
    let bytes = std::fs::read(FIXTURE_TRACE).expect("fixture trace");
    assert_eq!(
        descriptor.get("workload_hash").and_then(Json::as_str),
        Some(sha256_hex(&bytes).as_str())
    );

    // Same label, different bytes at the path → different key.
    let dir = std::env::temp_dir().join(format!("twl-cellkey-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("capture.trace");
    let label = |p: &std::path::Path| format!("TRACE[path={},seed=3]", p.display());
    let mut probe = spec.clone();
    std::fs::write(&path, &bytes).expect("copy trace");
    probe.attacks = vec![label(&path).parse().expect("trace label")];
    let original = CellKey::of(&probe, 0);
    let mut grown = bytes;
    grown.extend_from_slice(&[1, 7, 0, 0, 0, 0, 0, 0, 0]);
    std::fs::write(&path, &grown).expect("recapture");
    assert_ne!(
        CellKey::of(&probe, 0),
        original,
        "re-capture did not re-key"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The lifetime-run entry pins keyspace sharing: its descriptor must be
/// byte-identical to the same (scheme, attack) cell of an attack
/// matrix.
#[test]
fn golden_fixture_pins_attack_lifetime_sharing() {
    let cells = fixture_cells();
    let (_, attack_spec, attack_index) = &cells[0];
    let (_, lifetime_spec, lifetime_index) = &cells[1];
    assert_eq!(
        CellKey::descriptor(attack_spec, *attack_index).to_compact(),
        CellKey::descriptor(lifetime_spec, *lifetime_index).to_compact(),
    );
}
