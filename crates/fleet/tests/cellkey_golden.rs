//! Golden-fixture pin of the `twl-cellkey/v1` content address.
//!
//! `tests/fixtures/pr7_cellkeys.json` stores, for one representative
//! cell of each matrix kind, the exact canonical descriptor bytes and
//! the resulting key. These bytes are a compatibility contract: cache
//! entries written by one build must hit under every later build, so
//! any change that moves them MUST bump [`twl_fleet::cellkey::SCHEMA`]
//! (and regenerate this fixture under the new version) rather than
//! silently re-keying — see the schema-evolution rules on the
//! `cellkey` module.

use twl_attacks::AttackKind;
use twl_fleet::{sha256_hex, CellKey};
use twl_lifetime::{SchemeKind, SimLimits};
use twl_pcm::PcmConfig;
use twl_service::job::JobKind;
use twl_service::JobSpec;
use twl_telemetry::json::Json;
use twl_workloads::ParsecBenchmark;

const GOLDEN: &str = include_str!("fixtures/pr7_cellkeys.json");

/// The named cells the fixture pins, one per descriptor shape: a plain
/// attack-matrix cell, a lifetime run (which must share the attack
/// keyspace), a workload cell, and a degradation cell (which carries
/// the fault sub-document).
fn fixture_cells() -> Vec<(&'static str, JobSpec, usize)> {
    let base = JobSpec {
        kind: JobKind::AttackMatrix,
        pcm: PcmConfig::scaled(128, 2_000, 8),
        limits: SimLimits::default(),
        schemes: vec![SchemeKind::Nowl.into(), SchemeKind::TwlSwp.into()],
        attacks: vec![AttackKind::Repeat, AttackKind::Scan],
        benchmarks: vec![],
        fault: None,
    };
    let mut lifetime = base.clone();
    lifetime.kind = JobKind::LifetimeRun;
    lifetime.schemes = vec![SchemeKind::TwlSwp.into()];
    lifetime.attacks = vec![AttackKind::Scan];
    let mut workload = base.clone();
    workload.kind = JobKind::WorkloadMatrix;
    workload.attacks = vec![];
    workload.benchmarks = vec![ParsecBenchmark::ALL[0]];
    let mut degradation = base.clone();
    degradation.kind = JobKind::DegradationMatrix;
    vec![
        ("attack__twl_swp_x_scan", base, 3),
        ("lifetime_run__twl_swp_x_scan", lifetime, 0),
        ("workload__nowl_x_first_benchmark", workload, 0),
        ("degradation__nowl_x_repeat", degradation, 0),
    ]
}

#[test]
fn golden_cellkeys_are_byte_identical() {
    let golden = Json::parse(GOLDEN).expect("fixture parses");
    let entries = match golden.get("entries") {
        Some(Json::Arr(entries)) => entries,
        other => panic!("fixture has no entries array: {other:?}"),
    };
    let cells = fixture_cells();
    assert_eq!(entries.len(), cells.len(), "fixture/spec count mismatch");
    for ((name, spec, index), entry) in cells.into_iter().zip(entries) {
        assert_eq!(
            entry.get("name").and_then(Json::as_str),
            Some(name),
            "fixture order drifted"
        );
        let descriptor = CellKey::descriptor(&spec, index).to_compact();
        assert_eq!(
            entry.get("descriptor").and_then(Json::as_str),
            Some(descriptor.as_str()),
            "{name}: canonical descriptor bytes moved — this re-keys every \
             cache entry; bump the cellkey schema version instead"
        );
        let key = CellKey::of(&spec, index);
        assert_eq!(
            entry.get("key").and_then(Json::as_str),
            Some(key.as_str()),
            "{name}: key drifted from its pinned value"
        );
        // The fixture is self-consistent: the pinned key IS the SHA-256
        // of the pinned descriptor bytes.
        assert_eq!(key.as_str(), sha256_hex(descriptor.as_bytes()), "{name}");
    }
}

/// The lifetime-run entry pins keyspace sharing: its descriptor must be
/// byte-identical to the same (scheme, attack) cell of an attack
/// matrix.
#[test]
fn golden_fixture_pins_attack_lifetime_sharing() {
    let cells = fixture_cells();
    let (_, attack_spec, attack_index) = &cells[0];
    let (_, lifetime_spec, lifetime_index) = &cells[1];
    assert_eq!(
        CellKey::descriptor(attack_spec, *attack_index).to_compact(),
        CellKey::descriptor(lifetime_spec, *lifetime_index).to_compact(),
    );
}
