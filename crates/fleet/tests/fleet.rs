//! End-to-end fleet integration: an in-process `twl-coordinator`
//! fronting real `twl-serviced` workers (in-process servers or spawned
//! processes) must produce results bit-identical to running every cell
//! directly, survive dead and stalled workers, and re-simulate nothing
//! on a warm cache.
//!
//! Metric assertions use the per-worker `twl_fleet_worker_*` families
//! (worker addresses are unique per test) or deltas of global counters
//! that only grow — the telemetry registry is shared by every test in
//! this process.

use std::io::BufRead as _;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use twl_attacks::AttackKind;
use twl_fleet::{Coordinator, FleetConfig};
use twl_lifetime::{SchemeKind, SimLimits};
use twl_pcm::PcmConfig;
use twl_service::framing::{read_frame, write_frame};
use twl_service::job::JobKind;
use twl_service::wire::{Request, Response, PROTOCOL};
use twl_service::{encode_result, Client, JobSpec, Server, ServiceConfig, SubmitOutcome};
use twl_telemetry::json::Json;
use twl_telemetry::prom::{parse_exposition, PromSample};

/// Starts an in-process `twl-serviced` on an OS-assigned port.
fn spawn_worker(slots: usize) -> String {
    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: slots,
        idle_timeout_ms: 0,
        ..ServiceConfig::default()
    })
    .expect("bind in-process worker");
    let addr = server.local_addr().expect("worker addr").to_string();
    thread::spawn(move || server.run().expect("worker run"));
    addr
}

/// Starts an in-process coordinator; the returned address serves the
/// full `twl-wire/v1` surface.
fn spawn_coordinator(config: FleetConfig) -> String {
    let coordinator = Coordinator::bind(&config).expect("bind coordinator");
    let addr = coordinator
        .local_addr()
        .expect("coordinator addr")
        .to_string();
    thread::spawn(move || coordinator.run().expect("coordinator run"));
    addr
}

fn base_config() -> FleetConfig {
    FleetConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..FleetConfig::default()
    }
}

/// The ISSUE acceptance matrix: all 7 schemes × all 4 attacks.
fn full_matrix(seed: u64) -> JobSpec {
    JobSpec {
        kind: JobKind::AttackMatrix,
        pcm: PcmConfig::scaled(64, 500, seed),
        limits: SimLimits::default(),
        schemes: SchemeKind::ALL.iter().map(|&k| k.into()).collect(),
        attacks: vec![
            AttackKind::Repeat.into(),
            AttackKind::Random.into(),
            AttackKind::Scan.into(),
            AttackKind::Inconsistent.into(),
        ],
        benchmarks: vec![],
        fault: None,
    }
}

fn small_matrix(seed: u64) -> JobSpec {
    JobSpec {
        kind: JobKind::AttackMatrix,
        pcm: PcmConfig::scaled(64, 500, seed),
        limits: SimLimits::default(),
        schemes: vec![SchemeKind::Nowl.into(), SchemeKind::TwlSwp.into()],
        attacks: vec![AttackKind::Repeat.into(), AttackKind::Scan.into()],
        benchmarks: vec![],
        fault: None,
    }
}

/// What a single node computes for this spec, via the identical
/// assembly path the daemon uses.
fn direct_result(spec: &JobSpec) -> Json {
    let reports = (0..spec.cell_count()).map(|i| spec.run_cell(i).0).collect();
    encode_result(spec.kind, reports)
}

fn submit_and_wait(addr: &str, spec: &JobSpec) -> Json {
    let mut client = Client::connect(addr).expect("connect to coordinator");
    let job_id = match client.submit(spec).expect("submit") {
        SubmitOutcome::Accepted(id) => id,
        SubmitOutcome::Rejected { reason, .. } => panic!("submit rejected: {reason}"),
    };
    client.wait(job_id, |_| {}).expect("job result")
}

/// Scrapes and lints the coordinator's metrics page.
fn scrape(addr: &str) -> Vec<PromSample> {
    let mut client = Client::connect(addr).expect("metrics connection");
    let text = client.metrics().expect("metrics request");
    parse_exposition(&text).expect("coordinator metrics page lints clean")
}

/// One sample's value, optionally narrowed to a `worker="..."` row;
/// 0 when the family has no matching sample yet.
fn sample(samples: &[PromSample], name: &str, worker: Option<&str>) -> f64 {
    samples
        .iter()
        .find(|s| s.name == name && worker.is_none_or(|w| s.label("worker") == Some(w)))
        .map_or(0.0, |s| s.value)
}

fn cells_served_by(coordinator: &str, workers: &[&str]) -> f64 {
    let samples = scrape(coordinator);
    workers
        .iter()
        .map(|w| sample(&samples, "twl_fleet_worker_cells_served", Some(w)))
        .sum()
}

fn register(coordinator: &str, worker: &str) -> u64 {
    let mut client = Client::connect(coordinator).expect("register connection");
    let (echoed, slots) = client.register_worker(worker).expect("register_worker");
    assert_eq!(echoed, worker);
    slots
}

/// Polls `probe` until it returns true or the deadline passes.
fn wait_until(what: &str, deadline: Duration, mut probe: impl FnMut() -> bool) {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if probe() {
            return;
        }
        thread::sleep(Duration::from_millis(50));
    }
    panic!("timed out after {deadline:?} waiting for {what}");
}

/// The acceptance-criteria run: a 7-scheme × 4-attack × 3-seed sweep
/// sharded over two 2-slot workers is bit-identical to the single-node
/// computation, and a warm resubmission of the whole sweep re-simulates
/// zero cells.
#[test]
fn fleet_sweep_is_bit_identical_and_warm_resubmission_recomputes_nothing() {
    let workers = [spawn_worker(2), spawn_worker(2)];
    let cache_dir = std::env::temp_dir().join(format!("twl-fleet-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&cache_dir).ok();
    let coordinator = spawn_coordinator(FleetConfig {
        workers: workers.to_vec(),
        cache_dir: Some(cache_dir.clone()),
        ..base_config()
    });
    let worker_refs: Vec<&str> = workers.iter().map(String::as_str).collect();

    // The hello handshake advertises the fleet's total slot count.
    let probe = Client::connect(&coordinator).expect("hello probe");
    assert_eq!(probe.slots(), Some(4), "fleet slots misadvertised");
    drop(probe);

    let specs: Vec<JobSpec> = [3, 4, 5].map(full_matrix).to_vec();
    let singleton: Vec<String> = specs
        .iter()
        .map(|spec| direct_result(spec).to_compact())
        .collect();
    let total_cells: usize = specs.iter().map(JobSpec::cell_count).sum();
    assert_eq!(total_cells, 7 * 4 * 3);

    let cold: Vec<String> = specs
        .iter()
        .map(|spec| submit_and_wait(&coordinator, spec).to_compact())
        .collect();
    assert_eq!(cold, singleton, "fleet result differs from single-node");
    let served_cold = cells_served_by(&coordinator, &worker_refs);
    #[allow(clippy::cast_precision_loss)]
    let expected = total_cells as f64;
    assert_eq!(
        served_cold, expected,
        "every cold cell simulated exactly once"
    );

    // Warm pass: same sweep, zero re-simulation — the workers' served
    // counters must not move at all.
    let warm: Vec<String> = specs
        .iter()
        .map(|spec| submit_and_wait(&coordinator, spec).to_compact())
        .collect();
    assert_eq!(warm, singleton, "warm result differs from single-node");
    let served_warm = cells_served_by(&coordinator, &worker_refs);
    assert_eq!(
        served_warm, served_cold,
        "warm resubmission re-simulated cells instead of hitting the cache"
    );

    // The cache families are present and the whole page lints (scrape
    // already ran parse_exposition).
    let samples = scrape(&coordinator);
    assert!(
        sample(&samples, "twl_fleet_cache_entries", None) >= expected,
        "cache holds fewer entries than the sweep produced"
    );
    assert!(
        sample(&samples, "twl_fleet_cache_hits", None) >= expected,
        "warm pass did not count as cache hits"
    );

    // Clean drain: coordinator first, then its workers.
    Client::connect(&coordinator)
        .expect("shutdown connection")
        .shutdown()
        .expect("coordinator shutdown");
    for worker in &workers {
        Client::connect(worker)
            .expect("worker shutdown connection")
            .shutdown()
            .expect("worker shutdown");
    }
    std::fs::remove_dir_all(&cache_dir).ok();
}

/// How a fake (misbehaving) worker treats `run_cell`.
#[derive(Clone, Copy, PartialEq)]
enum FakeMode {
    /// Close the connection without answering (a crash).
    Die,
    /// Accept the request and never answer (a wedge).
    Stall,
}

/// A protocol-correct `hello`, then misbehavior on `run_cell`.
fn spawn_fake_worker(mode: FakeMode) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake worker");
    let addr = listener.local_addr().expect("fake addr").to_string();
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            thread::spawn(move || fake_connection(&stream, mode));
        }
    });
    addr
}

fn fake_connection(stream: &TcpStream, mode: FakeMode) {
    let mut reader = stream;
    loop {
        let Ok(frame) = read_frame(&mut reader) else {
            return;
        };
        match Request::from_json(&frame) {
            Ok(Request::Hello { .. }) => {
                let ok = Response::HelloOk {
                    proto: PROTOCOL.to_owned(),
                    slots: Some(1),
                };
                if write_frame(&mut { stream }, &ok.to_json()).is_err() {
                    return;
                }
            }
            Ok(Request::RunCell { .. }) => match mode {
                FakeMode::Die => return,
                FakeMode::Stall => {
                    thread::sleep(Duration::from_secs(120));
                    return;
                }
            },
            _ => return,
        }
    }
}

/// A worker that dies on every dispatch loses its cells to re-dispatch:
/// once a live worker joins, the job completes bit-identically and the
/// dead worker has served nothing.
#[test]
fn cells_lost_to_a_dead_worker_are_redispatched() {
    let coordinator = spawn_coordinator(FleetConfig {
        steal_after_ms: 60_000, // isolate the retry path from stealing
        lease_timeout_ms: 10_000,
        max_attempts: 25,
        ..base_config()
    });
    let dead = spawn_fake_worker(FakeMode::Die);
    assert_eq!(register(&coordinator, &dead), 1);

    let spec = small_matrix(6);
    let mut client = Client::connect(&coordinator).expect("connect");
    let job_id = match client.submit(&spec).expect("submit") {
        SubmitOutcome::Accepted(id) => id,
        SubmitOutcome::Rejected { reason, .. } => panic!("submit rejected: {reason}"),
    };

    // With only the dying worker registered, dispatches must already be
    // failing and re-queueing.
    wait_until(
        "the dead worker to break a dispatch",
        Duration::from_secs(10),
        || {
            let samples = scrape(&coordinator);
            sample(&samples, "twl_fleet_worker_failures", Some(&dead)) >= 1.0
        },
    );

    // A healthy worker joins mid-job and rescues every cell.
    let healthy = spawn_worker(1);
    register(&coordinator, &healthy);
    let result = client
        .wait(job_id, |_| {})
        .expect("job survives the dead worker");
    assert_eq!(
        result.to_compact(),
        direct_result(&spec).to_compact(),
        "re-dispatched result differs from single-node"
    );

    let samples = scrape(&coordinator);
    assert_eq!(
        sample(&samples, "twl_fleet_worker_cells_served", Some(&dead)),
        0.0,
        "the dead worker cannot have served cells"
    );
    #[allow(clippy::cast_precision_loss)]
    let expected = spec.cell_count() as f64;
    assert_eq!(
        sample(&samples, "twl_fleet_worker_cells_served", Some(&healthy)),
        expected,
        "the healthy worker served every cell"
    );
}

/// A wedged worker holds its cell forever; an idle slot on another
/// worker steals a duplicate and the first completion wins.
#[test]
fn cells_stuck_on_a_stalled_worker_are_stolen() {
    let coordinator = spawn_coordinator(FleetConfig {
        steal_after_ms: 200,
        // Longer than the test: completion can only come from a steal,
        // not from a lease expiry + retry.
        lease_timeout_ms: 120_000,
        max_attempts: 5,
        ..base_config()
    });
    let stalled = spawn_fake_worker(FakeMode::Stall);
    assert_eq!(register(&coordinator, &stalled), 1);

    let spec = JobSpec {
        schemes: vec![SchemeKind::TwlSwp.into()],
        attacks: vec![AttackKind::Repeat.into()],
        ..small_matrix(7)
    };
    let stolen_before = sample(&scrape(&coordinator), "twl_fleet_cells_stolen", None);
    let mut client = Client::connect(&coordinator).expect("connect");
    let job_id = match client.submit(&spec).expect("submit") {
        SubmitOutcome::Accepted(id) => id,
        SubmitOutcome::Rejected { reason, .. } => panic!("submit rejected: {reason}"),
    };

    // The lone cell must be wedged on the stalled worker first.
    wait_until(
        "the stalled worker to hold the cell",
        Duration::from_secs(10),
        || {
            let samples = scrape(&coordinator);
            sample(&samples, "twl_fleet_worker_inflight", Some(&stalled)) >= 1.0
        },
    );

    let healthy = spawn_worker(1);
    register(&coordinator, &healthy);
    let result = client.wait(job_id, |_| {}).expect("job survives the stall");
    assert_eq!(
        result.to_compact(),
        direct_result(&spec).to_compact(),
        "stolen result differs from single-node"
    );

    let samples = scrape(&coordinator);
    assert!(
        sample(&samples, "twl_fleet_cells_stolen", None) > stolen_before,
        "completion did not come from a steal"
    );
    assert_eq!(
        sample(&samples, "twl_fleet_worker_cells_served", Some(&healthy)),
        1.0,
        "the healthy worker served the stolen duplicate"
    );
}

/// A real `twl-serviced` child process on an OS-assigned port.
struct WorkerProcess {
    child: std::process::Child,
    addr: String,
}

impl WorkerProcess {
    fn spawn(binary: &std::path::Path) -> Self {
        let mut child = std::process::Command::new(binary)
            .args([
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--idle-timeout-ms",
                "0",
            ])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn twl-serviced");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("twl-serviced exited before announcing")
                .expect("read announce line");
            if let Some(rest) = line.trim().strip_prefix("twl-serviced listening on ") {
                break rest.to_owned();
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        thread::spawn(move || for _ in lines {});
        Self { child, addr }
    }
}

/// `CARGO_BIN_EXE_*` only resolves inside the owning crate, so the
/// cross-crate `twl-serviced` binary is located next to this test's own
/// executable (building it on demand if a partial target dir lacks it).
fn serviced_binary() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test executable path");
    dir.pop(); // deps/
    dir.pop(); // debug/ (or release/)
    let candidate = dir.join(format!("twl-serviced{}", std::env::consts::EXE_SUFFIX));
    if !candidate.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
        let status = std::process::Command::new(cargo)
            .args(["build", "-p", "twl-service", "--bin", "twl-serviced"])
            .status()
            .expect("run cargo build for twl-serviced");
        assert!(status.success(), "building twl-serviced failed");
    }
    assert!(
        candidate.exists(),
        "no twl-serviced at {}",
        candidate.display()
    );
    candidate
}

/// The ISSUE kill test: two real worker processes, one killed (SIGKILL,
/// no drain) mid-job. Its in-flight and never-claimed cells re-dispatch
/// to the survivor and the final report is bit-identical to the
/// single-node run.
#[test]
fn killing_a_worker_process_mid_job_keeps_the_report_bit_identical() {
    let binary = serviced_binary();
    let mut victim = WorkerProcess::spawn(&binary);
    let survivor = WorkerProcess::spawn(&binary);
    let coordinator = spawn_coordinator(FleetConfig {
        workers: vec![victim.addr.clone(), survivor.addr.clone()],
        lease_timeout_ms: 3_000,
        steal_after_ms: 1_000,
        max_attempts: 25,
        ..base_config()
    });

    // Endurance 1000 doubles per-cell work vs the other tests, keeping
    // the job alive long enough that the kill lands mid-run.
    let mut spec = full_matrix(9);
    spec.pcm = PcmConfig::scaled(64, 1_000, 9);
    let expected = direct_result(&spec).to_compact();

    let mut client = Client::connect(&coordinator).expect("connect");
    let job_id = match client.submit(&spec).expect("submit") {
        SubmitOutcome::Accepted(id) => id,
        SubmitOutcome::Rejected { reason, .. } => panic!("submit rejected: {reason}"),
    };

    // SIGKILL the victim on the first streamed cell completion — both
    // workers are mid-cell at that point.
    let events = AtomicU32::new(0);
    let result = client
        .wait(job_id, |_| {
            if events.fetch_add(1, Ordering::Relaxed) == 0 {
                victim.child.kill().expect("kill victim worker");
                victim.child.wait().expect("reap victim worker");
            }
        })
        .expect("job survives the killed worker");
    assert!(
        events.load(Ordering::Relaxed) > 0,
        "no cell events streamed"
    );
    assert_eq!(
        result.to_compact(),
        expected,
        "post-kill fleet report differs from single-node"
    );

    let samples = scrape(&coordinator);
    assert!(
        sample(&samples, "twl_fleet_worker_failures", Some(&victim.addr)) >= 1.0,
        "the killed worker's dispatches were never failed over"
    );

    Client::connect(&survivor.addr)
        .expect("survivor shutdown connection")
        .shutdown()
        .expect("survivor shutdown");
}
