#![warn(missing_docs)]

//! Memory-controller timing model for the `tossup-wl` simulator.
//!
//! Reproduces the execution-time side of the paper's evaluation (Fig. 9)
//! without a full CPU simulator: requests from a workload arrive at the
//! rate implied by the benchmark's measured bandwidth (Table 2) and are
//! serviced by a single PCM channel whose banks overlap device latency.
//! Three costs separate the schemes:
//!
//! * **engine cycles** — scheme logic on the request path (Bloom
//!   filters and lists for BWL every write; TWL's tables plus an RNG
//!   only on tossing writes; SR's XOR datapath);
//! * **blocking cycles** — page migrations serialize the channel; bulk
//!   epoch swaps stall every queued request (this is also the attacker's
//!   side channel);
//! * **extra device writes** — overhead writes occupy banks.
//!
//! Execution time is the completion time of the last request in an
//! open-loop queue, so a swap burst delays everything behind it exactly
//! as a blocked memory bus would. Normalizing a scheme's execution time
//! by NOWL's on the identical command stream yields Fig. 9.
//!
//! # Examples
//!
//! ```
//! use twl_memctrl::{MemCtrlConfig, simulate_execution};
//! use twl_pcm::{PcmConfig, PcmDevice};
//! use twl_wl_core::Nowl;
//! use twl_workloads::{SyntheticWorkload, WorkloadConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pcm = PcmConfig::builder().pages(256).mean_endurance(1_000_000).build()?;
//! let mut device = PcmDevice::new(&pcm);
//! let mut scheme = Nowl::new(256);
//! let mut workload = SyntheticWorkload::new(&WorkloadConfig {
//!     pages: 256, footprint: 128, zipf_alpha: 0.8, read_fraction: 0.5, seed: 1,
//! });
//! let report = simulate_execution(
//!     &MemCtrlConfig::default(), &mut scheme, &mut device, &mut workload, 10_000)?;
//! assert!(report.total_cycles > 0);
//! # Ok(())
//! # }
//! ```

mod bank;
mod config;
mod controller;
mod sim;

pub use bank::BankArray;
pub use config::MemCtrlConfig;
pub use controller::{
    queued_execution, queued_execution_degraded, ControllerConfig, ControllerReport,
    SchedulingPolicy,
};
pub use sim::{simulate_execution, simulate_execution_banked, PerfReport};
