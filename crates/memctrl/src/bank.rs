//! Bank-level device occupancy.

use twl_pcm::PhysicalPageAddr;

/// Tracks per-bank busy times of the PCM array.
///
/// Pages are interleaved across banks by low address bits (page *p*
/// lives in bank `p mod banks`, Table 1's 32-bank layout). A request to
/// a busy bank waits for it; requests to distinct banks overlap. A
/// *blocking* operation (bulk migration that must appear atomic to the
/// memory) seizes every bank.
///
/// # Examples
///
/// ```
/// use twl_memctrl::BankArray;
/// use twl_pcm::PhysicalPageAddr;
///
/// let mut banks = BankArray::new(4);
/// let done_a = banks.occupy(PhysicalPageAddr::new(0), 0.0, 100.0);
/// let done_b = banks.occupy(PhysicalPageAddr::new(1), 0.0, 100.0);
/// assert_eq!(done_a, 100.0);
/// assert_eq!(done_b, 100.0, "different banks overlap");
/// let done_c = banks.occupy(PhysicalPageAddr::new(4), 0.0, 100.0);
/// assert_eq!(done_c, 200.0, "same bank as A serializes");
/// ```
#[derive(Debug, Clone)]
pub struct BankArray {
    busy_until: Vec<f64>,
}

impl BankArray {
    /// Creates an idle array of `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`.
    #[must_use]
    pub fn new(banks: u32) -> Self {
        assert!(banks > 0, "need at least one bank");
        Self {
            busy_until: vec![0.0; banks as usize],
        }
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> u32 {
        self.busy_until.len() as u32
    }

    fn bank_of(&self, pa: PhysicalPageAddr) -> usize {
        (pa.index() % self.busy_until.len() as u64) as usize
    }

    /// Schedules an access to `pa`'s bank starting no earlier than
    /// `now` and lasting `duration` cycles; returns the completion time.
    pub fn occupy(&mut self, pa: PhysicalPageAddr, now: f64, duration: f64) -> f64 {
        let bank = self.bank_of(pa);
        let start = now.max(self.busy_until[bank]);
        self.busy_until[bank] = start + duration;
        self.busy_until[bank]
    }

    /// Seizes every bank for `duration` cycles starting no earlier than
    /// `now` (atomic bulk migration); returns the completion time.
    pub fn occupy_all(&mut self, now: f64, duration: f64) -> f64 {
        twl_telemetry::counter!("twl.memctrl.full_blockings").inc();
        let start = self.busy_until.iter().fold(now, |acc, &b| acc.max(b));
        let end = start + duration;
        for b in &mut self.busy_until {
            *b = end;
        }
        end
    }

    /// Whether `pa`'s bank is idle at time `t`.
    #[must_use]
    pub fn is_idle(&self, pa: PhysicalPageAddr, t: f64) -> bool {
        self.busy_until[self.bank_of(pa)] <= t
    }

    /// Earliest time every bank is idle.
    #[must_use]
    pub fn all_idle_at(&self) -> f64 {
        self.busy_until.iter().fold(0.0, |acc, &b| acc.max(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_maps_by_low_bits() {
        let banks = BankArray::new(8);
        assert_eq!(banks.bank_of(PhysicalPageAddr::new(13)), 5);
        assert_eq!(banks.bank_of(PhysicalPageAddr::new(21)), 5);
    }

    #[test]
    fn same_bank_serializes_different_banks_overlap() {
        let mut banks = BankArray::new(2);
        let a = banks.occupy(PhysicalPageAddr::new(0), 0.0, 50.0);
        let b = banks.occupy(PhysicalPageAddr::new(2), 0.0, 50.0);
        let c = banks.occupy(PhysicalPageAddr::new(1), 0.0, 50.0);
        assert_eq!(a, 50.0);
        assert_eq!(b, 100.0);
        assert_eq!(c, 50.0);
    }

    #[test]
    fn occupy_all_waits_for_stragglers() {
        let mut banks = BankArray::new(4);
        banks.occupy(PhysicalPageAddr::new(3), 0.0, 500.0);
        let end = banks.occupy_all(100.0, 10.0);
        assert_eq!(end, 510.0);
        // Everything after the atomic op starts at its end.
        let next = banks.occupy(PhysicalPageAddr::new(0), 0.0, 1.0);
        assert_eq!(next, 511.0);
    }

    #[test]
    fn idle_array_starts_at_zero() {
        let banks = BankArray::new(3);
        assert_eq!(banks.all_idle_at(), 0.0);
    }
}
