//! NVMain-style queued memory controller.
//!
//! The paper's performance numbers come from gem5 connected to NVMain
//! \[8\], whose controller buffers requests in read and write queues,
//! serves reads with priority (the CPU stalls on them), and drains
//! writes in batches between high/low watermarks. This module models
//! that organization on top of [`BankArray`](crate::BankArray), as a
//! third, finest-grained execution model beside the coarse and banked
//! closed-loop simulators in [`crate::simulate_execution`] /
//! [`crate::simulate_execution_banked`].

use crate::{BankArray, MemCtrlConfig};
use serde::{Deserialize, Serialize};
use twl_faults::{FaultDomain, FaultEngine};
use twl_pcm::{PcmDevice, PcmError};
use twl_wl_core::WearLeveler;
use twl_workloads::{MemCmd, MemOp};

/// Queue scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Strict arrival order across reads and writes.
    Fcfs,
    /// Reads first (the CPU stalls on them); writes drain in batches
    /// between the configured watermarks — NVMain's default behaviour.
    ReadPriority,
}

/// Configuration of [`queued_execution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Scheduling policy.
    pub policy: SchedulingPolicy,
    /// Write-queue capacity (the drain watermarks keep occupancy at or
    /// below `drain_high`, so this is an upper bound by construction).
    pub write_queue_depth: usize,
    /// Start draining writes ahead of reads at this occupancy.
    pub drain_high: usize,
    /// Once draining, keep going until occupancy falls to this level.
    pub drain_low: usize,
}

impl ControllerConfig {
    /// NVMain-flavoured defaults: read priority, 64-deep write queue,
    /// drain between 48 and 16.
    #[must_use]
    pub fn nvmain_like() -> Self {
        Self {
            policy: SchedulingPolicy::ReadPriority,
            write_queue_depth: 64,
            drain_high: 48,
            drain_low: 16,
        }
    }

    fn validate(&self) {
        assert!(self.write_queue_depth > 0, "write queue must hold requests");
        assert!(
            self.drain_low < self.drain_high && self.drain_high <= self.write_queue_depth,
            "watermarks must satisfy low < high <= depth"
        );
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self::nvmain_like()
    }
}

/// Result of a queued-controller simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerReport {
    /// Completion cycle of the last request.
    pub total_cycles: u64,
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Mean read latency (arrival → data) in cycles.
    pub mean_read_latency: f64,
    /// Worst read latency in cycles.
    pub max_read_latency: u64,
}

/// A queued controller simulation over an open-loop arrival stream.
///
/// Requests arrive every [`MemCtrlConfig::inter_arrival_cycles`]; writes
/// enter the write queue and drain in watermark-bounded batches; reads
/// either bypass queued writes (read priority) or take their turn
/// (FCFS). Wear-leveling migrations appear as
/// whole-array blocking, exactly as the simpler models count them.
///
/// # Errors
///
/// Propagates device errors from the scheme.
///
/// # Examples
///
/// ```
/// use twl_memctrl::{queued_execution, ControllerConfig, MemCtrlConfig};
/// use twl_pcm::{PcmConfig, PcmDevice};
/// use twl_wl_core::Nowl;
/// use twl_workloads::{SyntheticWorkload, WorkloadConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pcm = PcmConfig::builder().pages(256).mean_endurance(1_000_000).build()?;
/// let mut device = PcmDevice::new(&pcm);
/// let mut scheme = Nowl::new(256);
/// let mut workload = SyntheticWorkload::new(&WorkloadConfig {
///     pages: 256, footprint: 128, zipf_alpha: 0.8, read_fraction: 0.5, seed: 1,
/// });
/// let report = queued_execution(
///     &MemCtrlConfig::default(),
///     &ControllerConfig::nvmain_like(),
///     &mut scheme,
///     &mut device,
///     &mut workload,
///     5_000,
/// )?;
/// assert_eq!(report.reads + report.writes, 5_000);
/// # Ok(())
/// # }
/// ```
pub fn queued_execution(
    timing: &MemCtrlConfig,
    config: &ControllerConfig,
    scheme: &mut dyn WearLeveler,
    device: &mut PcmDevice,
    workload: &mut dyn Iterator<Item = MemCmd>,
    requests: u64,
) -> Result<ControllerReport, PcmError> {
    queued_execution_inner(timing, config, scheme, device, workload, requests, None)
}

/// [`queued_execution`] over a fault-tolerant [`FaultDomain`]: after
/// every serviced write the domain's [`FaultEngine`] absorbs any new
/// cell faults, retiring uncorrectable pages to the spare pool, so the
/// controller keeps servicing requests across retirements with the
/// timing model unchanged.
///
/// The scheme must have been built over the domain's data region (e.g.
/// via `twl_lifetime::build_scheme_for_region`) so it never addresses
/// the spare tail.
///
/// # Errors
///
/// Propagates device errors from the scheme, and
/// [`PcmError::SparesExhausted`] once a retirement finds the spare pool
/// empty — the device's true end of life. Counters accumulated up to
/// that point (in the domain and in telemetry) remain valid.
pub fn queued_execution_degraded(
    timing: &MemCtrlConfig,
    config: &ControllerConfig,
    scheme: &mut dyn WearLeveler,
    domain: &mut FaultDomain,
    workload: &mut dyn Iterator<Item = MemCmd>,
    requests: u64,
) -> Result<ControllerReport, PcmError> {
    queued_execution_inner(
        timing,
        config,
        scheme,
        &mut domain.device,
        workload,
        requests,
        Some(&mut domain.engine),
    )
}

fn queued_execution_inner(
    timing: &MemCtrlConfig,
    config: &ControllerConfig,
    scheme: &mut dyn WearLeveler,
    device: &mut PcmDevice,
    workload: &mut dyn Iterator<Item = MemCmd>,
    requests: u64,
    mut fault: Option<&mut FaultEngine>,
) -> Result<ControllerReport, PcmError> {
    assert!(requests > 0, "simulate at least one request");
    config.validate();
    let device_timing = device.config().timing;
    let read_latency = device_timing.read_latency as f64;
    let write_latency = device_timing.write_latency() as f64;
    let mut banks = BankArray::new(device.config().banks);

    // Pending writes: arrival times only — the scheme runs at *issue*
    // time so device wear follows service order.
    let mut write_q: Vec<(f64, MemCmd)> = Vec::new();
    let mut draining = false;

    let mut clock;
    let mut last_completion = 0.0f64;
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut read_latency_sum = 0.0f64;
    let mut max_read_latency = 0.0f64;

    let issue_write = |entry: (f64, MemCmd),
                       now: f64,
                       banks: &mut BankArray,
                       scheme: &mut dyn WearLeveler,
                       device: &mut PcmDevice,
                       fault: &mut Option<&mut FaultEngine>|
     -> Result<f64, PcmError> {
        let (_, cmd) = entry;
        let out = scheme.write(cmd.la, device)?;
        // Degraded mode: absorb the cell faults this write (and any
        // migrations it triggered) may have tripped, retiring pages
        // before the next request can touch them.
        if let Some(engine) = fault.as_mut() {
            engine.absorb(device)?;
        }
        let mut t = now + out.engine_cycles as f64;
        if out.blocking_cycles > 0 {
            t = banks.occupy_all(t, out.blocking_cycles as f64 * timing.blocking_visibility);
        }
        let mut done = t;
        for _ in 0..out.device_writes {
            done = banks.occupy(out.pa, t, write_latency);
        }
        Ok(done)
    };

    let mut arrival = 0.0f64;
    for _ in 0..requests {
        arrival += timing.inter_arrival_cycles;
        clock = arrival;
        let cmd = workload.next().expect("workloads are endless");
        match cmd.op {
            MemOp::Write => {
                writes += 1;
                twl_telemetry::counter!("twl.memctrl.writes").inc();
                match config.policy {
                    // FCFS issues every write straight to its bank, in
                    // arrival order — reads arriving later on the same
                    // bank queue behind 2000-cycle write pulses.
                    SchedulingPolicy::Fcfs => {
                        let done = issue_write(
                            (clock, cmd),
                            clock,
                            &mut banks,
                            scheme,
                            device,
                            &mut fault,
                        )?;
                        last_completion = last_completion.max(done);
                    }
                    // Read priority parks writes; the paced drain below
                    // trickles them out between reads.
                    SchedulingPolicy::ReadPriority => {
                        write_q.push((clock, cmd));
                    }
                }
            }
            MemOp::Read => {
                reads += 1;
                twl_telemetry::counter!("twl.memctrl.reads").inc();
                let out = scheme.read(cmd.la, device)?;
                let done = banks.occupy(out.pa, clock + out.engine_cycles as f64, read_latency);
                last_completion = last_completion.max(done);
                let latency = done - arrival;
                read_latency_sum += latency;
                max_read_latency = max_read_latency.max(latency);
            }
        }

        // Opportunistic background drain (read-priority only): once the
        // queue is past the low watermark, parked writes slip into banks
        // that are idle *right now* (predicted via the current mapping),
        // so they never pile up behind each other or ahead of reads. A
        // queue past the high watermark (or at capacity) forces the
        // oldest writes out regardless, bounding the queue.
        if config.policy == SchedulingPolicy::ReadPriority {
            if write_q.len() > config.drain_low {
                let mut i = 0;
                while i < write_q.len() && write_q.len() > config.drain_low {
                    let predicted = scheme.translate(write_q[i].1.la);
                    if banks.is_idle(predicted, clock) {
                        let entry = write_q.remove(i);
                        let done =
                            issue_write(entry, clock, &mut banks, scheme, device, &mut fault)?;
                        last_completion = last_completion.max(done);
                    } else {
                        i += 1;
                    }
                }
            }
            twl_telemetry::histogram!("twl.memctrl.write_queue_depth").record(write_q.len() as u64);
            if write_q.len() >= config.drain_high.min(config.write_queue_depth) {
                draining = true;
                twl_telemetry::counter!("twl.memctrl.forced_drains").inc();
            }
            if draining {
                while write_q.len() > config.drain_low {
                    let entry = write_q.remove(0);
                    let done = issue_write(entry, clock, &mut banks, scheme, device, &mut fault)?;
                    last_completion = last_completion.max(done);
                }
                draining = false;
            }
        }
    }
    // Final drain.
    let clock = arrival;
    while !write_q.is_empty() {
        let entry = write_q.remove(0);
        let done = issue_write(entry, clock, &mut banks, scheme, device, &mut fault)?;
        last_completion = last_completion.max(done);
    }

    Ok(ControllerReport {
        total_cycles: last_completion.max(arrival).ceil() as u64,
        reads,
        writes,
        mean_read_latency: if reads == 0 {
            0.0
        } else {
            read_latency_sum / reads as f64
        },
        max_read_latency: max_read_latency.ceil() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::PcmConfig;
    use twl_wl_core::Nowl;
    use twl_workloads::{SyntheticWorkload, WorkloadConfig};

    fn device() -> PcmDevice {
        let pcm = PcmConfig::builder()
            .pages(256)
            .mean_endurance(100_000_000)
            .seed(4)
            .build()
            .unwrap();
        PcmDevice::new(&pcm)
    }

    fn workload(read_fraction: f64, seed: u64) -> SyntheticWorkload {
        SyntheticWorkload::new(&WorkloadConfig {
            pages: 256,
            footprint: 256,
            zipf_alpha: 0.6,
            read_fraction,
            seed,
        })
    }

    /// Bursty traffic: phases of back-to-back writes followed by reads
    /// — the pattern where deferring writes pays off.
    fn bursty(seed: u64) -> impl Iterator<Item = MemCmd> {
        use twl_pcm::LogicalPageAddr;
        use twl_rng::{SimRng, Xoshiro256StarStar};
        let mut rng = Xoshiro256StarStar::seed_from(seed);
        let mut i = 0u64;
        std::iter::from_fn(move || {
            let la = LogicalPageAddr::new(rng.next_bounded(256));
            let cmd = if i % 128 < 40 {
                MemCmd::write(la)
            } else {
                MemCmd::read(la)
            };
            i += 1;
            Some(cmd)
        })
    }

    #[test]
    fn read_priority_beats_fcfs_on_read_latency() {
        let timing = MemCtrlConfig::for_bandwidth(60_000.0, 4096, 0.5);
        let run = |policy| {
            let mut dev = device();
            let mut scheme = Nowl::new(256);
            let mut w = bursty(7);
            let config = ControllerConfig {
                policy,
                ..ControllerConfig::nvmain_like()
            };
            queued_execution(&timing, &config, &mut scheme, &mut dev, &mut w, 20_000)
                .unwrap()
                .mean_read_latency
        };
        let fcfs = run(SchedulingPolicy::Fcfs);
        let prio = run(SchedulingPolicy::ReadPriority);
        assert!(
            prio < fcfs,
            "read priority {prio} must beat FCFS {fcfs} under bursty writes"
        );
    }

    #[test]
    fn all_requests_are_served_and_wear_recorded() {
        let timing = MemCtrlConfig::default();
        let mut dev = device();
        let mut scheme = Nowl::new(256);
        let mut w = workload(0.5, 3);
        let report = queued_execution(
            &timing,
            &ControllerConfig::nvmain_like(),
            &mut scheme,
            &mut dev,
            &mut w,
            10_000,
        )
        .unwrap();
        assert_eq!(report.reads + report.writes, 10_000);
        assert_eq!(dev.total_writes(), report.writes);
    }

    #[test]
    fn drain_bounds_the_write_queue() {
        // The watermark drain keeps the queue at or below drain_high at
        // every instant, so an explicit overflow path is unnecessary;
        // verify the invariant holds under saturating write traffic by
        // running to completion (the final drain empties the queue).
        let timing = MemCtrlConfig::for_bandwidth(60_000.0, 4096, 0.01);
        let config = ControllerConfig {
            policy: SchedulingPolicy::ReadPriority,
            write_queue_depth: 8,
            drain_high: 8,
            drain_low: 2,
        };
        let mut dev = device();
        let mut scheme = Nowl::new(256);
        let mut w = workload(0.0, 5);
        let report =
            queued_execution(&timing, &config, &mut scheme, &mut dev, &mut w, 20_000).unwrap();
        assert_eq!(report.writes, 20_000);
        assert_eq!(
            dev.total_writes(),
            20_000,
            "final drain must flush everything"
        );
    }

    #[test]
    fn determinism() {
        let timing = MemCtrlConfig::default();
        let run = || {
            let mut dev = device();
            let mut scheme = Nowl::new(256);
            let mut w = workload(0.5, 11);
            queued_execution(
                &timing,
                &ControllerConfig::nvmain_like(),
                &mut scheme,
                &mut dev,
                &mut w,
                5_000,
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn degraded_run_services_requests_across_retirements() {
        use twl_faults::{provision, CorrectionPolicy, FaultConfig};

        // Low endurance plus a tiny hammered footprint wears a few data
        // pages past their correction budget mid-run; a generous spare
        // pool keeps the controller short of exhaustion.
        let pcm = PcmConfig::builder()
            .pages(64)
            .mean_endurance(1_000)
            .seed(9)
            .build()
            .unwrap();
        let fault_cfg = FaultConfig {
            cell_groups_per_page: 8,
            group_sigma_fraction: 0.1,
            policy: CorrectionPolicy::Ecp { entries: 2 },
            spare_fraction: 0.5,
            seed: 21,
        };
        let mut domain = provision(&pcm, &fault_cfg).unwrap();
        let mut scheme = Nowl::new(domain.data_pages);
        let mut w = SyntheticWorkload::new(&WorkloadConfig {
            pages: 64,
            footprint: 4,
            zipf_alpha: 0.9,
            read_fraction: 0.0,
            seed: 2,
        });
        let report = queued_execution_degraded(
            &MemCtrlConfig::default(),
            &ControllerConfig::nvmain_like(),
            &mut scheme,
            &mut domain,
            &mut w,
            6_000,
        )
        .unwrap();
        assert_eq!(report.writes, 6_000, "every request must be serviced");
        let retired = domain.device.retired_pages();
        assert!(retired >= 1, "the hammered pages must retire mid-run");
        assert_eq!(
            domain.device.spares_remaining() + retired,
            domain.spare_pages,
            "every retirement consumes exactly one spare"
        );
        // NOWL issues one device write per logical write; the only
        // overhead writes are the per-retirement migration copies.
        assert_eq!(domain.device.total_writes(), report.writes + retired);
    }

    #[test]
    #[should_panic(expected = "watermarks must satisfy")]
    fn bad_watermarks_panic() {
        let config = ControllerConfig {
            policy: SchedulingPolicy::ReadPriority,
            write_queue_depth: 8,
            drain_high: 9,
            drain_low: 2,
        };
        let timing = MemCtrlConfig::default();
        let mut dev = device();
        let mut scheme = Nowl::new(256);
        let mut w = workload(0.5, 1);
        let _ = queued_execution(&timing, &config, &mut scheme, &mut dev, &mut w, 10);
    }
}
