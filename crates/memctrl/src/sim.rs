//! The closed-loop execution-time simulation.

use crate::MemCtrlConfig;
use serde::{Deserialize, Serialize};
use twl_pcm::{PcmDevice, PcmError};
use twl_wl_core::WearLeveler;
use twl_workloads::{MemCmd, MemOp};

/// Result of one execution-time simulation.
///
/// Normalize against a NOWL run of the same command stream with
/// [`PerfReport::normalized_to`] to obtain a Fig. 9 bar.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Completion cycle of the last request.
    pub total_cycles: u64,
    /// Requests serviced.
    pub requests: u64,
    /// Read requests among them.
    pub reads: u64,
    /// Write requests among them.
    pub writes: u64,
    /// Mean request latency (arrival → completion) in cycles.
    pub mean_latency: f64,
    /// Worst single-request latency in cycles — under an epoch-swap
    /// scheme this is the spike the attacker detects.
    pub max_latency: u64,
}

impl PerfReport {
    /// Execution time relative to a baseline run (Fig. 9's y-axis).
    ///
    /// # Panics
    ///
    /// Panics if the baseline ran zero cycles.
    #[must_use]
    pub fn normalized_to(&self, baseline: &PerfReport) -> f64 {
        assert!(baseline.total_cycles > 0, "baseline must have run");
        self.total_cycles as f64 / baseline.total_cycles as f64
    }
}

/// Runs `requests` commands from `workload` through `scheme` on
/// `device`, modelling a closed-loop CPU: each request issues one
/// compute gap ([`MemCtrlConfig::inter_arrival_cycles`]) after the
/// previous one *completes*, and its full memory latency is on the
/// critical path. This is the regime in which a wear-leveling engine's
/// per-request cycles, its overhead writes, and its migration blocking
/// all extend execution time — the quantity Fig. 9 normalizes.
///
/// Per request, the latency is the scheme's engine cycles plus the
/// device access time divided across banks; migration blocking
/// serializes the channel entirely and stalls the requester.
///
/// # Errors
///
/// Propagates device errors — including wear-out, if the run is long
/// enough to kill a page (use a high-endurance device for performance
/// studies).
pub fn simulate_execution(
    config: &MemCtrlConfig,
    scheme: &mut dyn WearLeveler,
    device: &mut PcmDevice,
    workload: &mut dyn Iterator<Item = MemCmd>,
    requests: u64,
) -> Result<PerfReport, PcmError> {
    assert!(requests > 0, "simulate at least one request");
    let timing = device.config().timing;
    let banks = f64::from(device.config().banks);
    let read_occ = timing.read_latency as f64 / banks;
    let write_occ = timing.write_latency() as f64 / banks;

    let mut clock = 0.0f64;
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut latency_sum = 0.0f64;
    let mut max_latency = 0.0f64;

    for _ in 0..requests {
        // Compute gap between dependent requests.
        clock += config.inter_arrival_cycles;
        let cmd = workload.next().expect("workloads are endless");
        let latency = match cmd.op {
            MemOp::Read => {
                reads += 1;
                let out = scheme.read(cmd.la, device)?;
                out.engine_cycles as f64 + read_occ
            }
            MemOp::Write => {
                writes += 1;
                let out = scheme.write(cmd.la, device)?;
                // Every device write (the request plus overhead writes)
                // occupies banks; the blocking component stalls the
                // requester outright.
                out.engine_cycles as f64
                    + write_occ * f64::from(out.device_writes)
                    + out.blocking_cycles as f64 * config.blocking_visibility
            }
        };
        clock += latency;
        latency_sum += latency;
        max_latency = max_latency.max(latency);
    }

    Ok(PerfReport {
        total_cycles: clock.ceil() as u64,
        requests,
        reads,
        writes,
        mean_latency: latency_sum / requests as f64,
        max_latency: max_latency.ceil() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twl_pcm::PcmConfig;
    use twl_wl_core::Nowl;
    use twl_workloads::{SyntheticWorkload, WorkloadConfig};

    fn workload(seed: u64) -> SyntheticWorkload {
        SyntheticWorkload::new(&WorkloadConfig {
            pages: 256,
            footprint: 128,
            zipf_alpha: 0.8,
            read_fraction: 0.5,
            seed,
        })
    }

    fn device() -> PcmDevice {
        let pcm = PcmConfig::builder()
            .pages(256)
            .mean_endurance(100_000_000)
            .seed(9)
            .build()
            .unwrap();
        PcmDevice::new(&pcm)
    }

    #[test]
    fn nowl_execution_is_gaps_plus_latencies() {
        let config = MemCtrlConfig::for_bandwidth(100.0, 4096, 0.5);
        let mut dev = device();
        let mut scheme = Nowl::new(256);
        let mut w = workload(1);
        let report = simulate_execution(&config, &mut scheme, &mut dev, &mut w, 10_000).unwrap();
        // Closed loop: total = N x gap + sum of latencies; NOWL latency
        // is bounded by one write occupancy.
        let gaps = (10_000.0 * config.inter_arrival_cycles) as u64;
        assert!(report.total_cycles >= gaps);
        assert!(report.total_cycles <= gaps + 10_000 * 2000 / 32 + 10_000);
        assert_eq!(report.reads + report.writes, 10_000);
    }

    #[test]
    fn normalization_is_one_against_itself() {
        let config = MemCtrlConfig::default();
        let mut dev = device();
        let mut scheme = Nowl::new(256);
        let mut w = workload(2);
        let report = simulate_execution(&config, &mut scheme, &mut dev, &mut w, 1_000).unwrap();
        assert_eq!(report.normalized_to(&report), 1.0);
    }

    #[test]
    fn blocking_visibility_scales_overhead() {
        use twl_core::{TossUpWearLeveling, TwlConfig};
        let mut full = MemCtrlConfig::for_bandwidth(1000.0, 4096, 0.5);
        full.blocking_visibility = 1.0;
        let mut hidden = full;
        hidden.blocking_visibility = 0.0;

        let twl_config = TwlConfig::builder().toss_up_interval(1).build().unwrap();
        let run = |config: &MemCtrlConfig| {
            let mut dev = device();
            let mut twl = TossUpWearLeveling::new(&twl_config, dev.endurance_map());
            let mut w = workload(4);
            simulate_execution(config, &mut twl, &mut dev, &mut w, 5_000)
                .unwrap()
                .total_cycles
        };
        assert!(
            run(&full) > run(&hidden),
            "visible blocking must extend execution time"
        );
    }

    #[test]
    fn higher_bandwidth_means_higher_relative_overhead() {
        // Fig. 9's structure: the same scheme costs relatively more on
        // a memory-bound benchmark (vips) than on an idle one
        // (streamcluster).
        use twl_core::{TossUpWearLeveling, TwlConfig};
        let twl_config = TwlConfig::dac17();
        let normalized = |bw: f64| {
            let config = MemCtrlConfig::for_bandwidth(bw, 4096, 0.5);
            let mut dev = device();
            let mut nowl = Nowl::new(256);
            let mut w = workload(6);
            let base = simulate_execution(&config, &mut nowl, &mut dev, &mut w, 20_000).unwrap();
            let mut dev2 = device();
            let mut twl = TossUpWearLeveling::new(&twl_config, dev2.endurance_map());
            let mut w2 = workload(6);
            let with = simulate_execution(&config, &mut twl, &mut dev2, &mut w2, 20_000).unwrap();
            with.normalized_to(&base)
        };
        let fast = normalized(3309.0);
        let slow = normalized(12.0);
        assert!(
            fast > slow,
            "vips-rate {fast} must exceed streamcluster-rate {slow}"
        );
    }

    #[test]
    fn blocking_shows_up_in_max_latency() {
        use twl_core::{TossUpWearLeveling, TwlConfig};
        let config = MemCtrlConfig::for_bandwidth(1000.0, 4096, 0.5);
        let mut dev = device();
        let twl_config = TwlConfig::builder().toss_up_interval(1).build().unwrap();
        let mut twl = TossUpWearLeveling::new(&twl_config, dev.endurance_map());
        let mut nowl = Nowl::new(256);

        let mut w = workload(3);
        let base = simulate_execution(&config, &mut nowl, &mut dev, &mut w, 5_000).unwrap();
        let mut dev2 = device();
        let mut w2 = workload(3);
        let with_twl = simulate_execution(&config, &mut twl, &mut dev2, &mut w2, 5_000).unwrap();
        assert!(
            with_twl.max_latency > base.max_latency,
            "swaps must spike latency"
        );
        assert!(with_twl.normalized_to(&base) > 1.0);
    }
}

/// A finer-grained variant of [`simulate_execution`] with explicit
/// bank-level scheduling (see [`crate::BankArray`]): reads stall the
/// requester until their bank completes; writes are *posted* — they
/// occupy their bank but only stall the requester when the bank's
/// backlog exceeds a write-queue depth of four writes; migration
/// blocking seizes every bank.
///
/// This model resolves bank conflicts the coarse model averages away;
/// both reproduce the same Fig. 9 ordering.
///
/// # Errors
///
/// Propagates device errors, as [`simulate_execution`] does.
pub fn simulate_execution_banked(
    config: &MemCtrlConfig,
    scheme: &mut dyn WearLeveler,
    device: &mut PcmDevice,
    workload: &mut dyn Iterator<Item = MemCmd>,
    requests: u64,
) -> Result<PerfReport, PcmError> {
    assert!(requests > 0, "simulate at least one request");
    let timing = device.config().timing;
    let read_latency = timing.read_latency as f64;
    let write_latency = timing.write_latency() as f64;
    let queue_depth_cycles = 4.0 * write_latency;
    let mut banks = crate::BankArray::new(device.config().banks);

    let mut clock = 0.0f64;
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut latency_sum = 0.0f64;
    let mut max_latency = 0.0f64;

    for _ in 0..requests {
        clock += config.inter_arrival_cycles;
        let issue = clock;
        let cmd = workload.next().expect("workloads are endless");
        match cmd.op {
            MemOp::Read => {
                reads += 1;
                let out = scheme.read(cmd.la, device)?;
                // Reads are synchronous: stall until the bank delivers.
                let done = banks.occupy(out.pa, issue + out.engine_cycles as f64, read_latency);
                clock = done.max(clock);
            }
            MemOp::Write => {
                writes += 1;
                let out = scheme.write(cmd.la, device)?;
                clock += out.engine_cycles as f64;
                // Migration blocking seizes the whole array.
                if out.blocking_cycles > 0 {
                    let done = banks.occupy_all(
                        clock,
                        out.blocking_cycles as f64 * config.blocking_visibility,
                    );
                    clock = done.max(clock);
                }
                // Posted writes: occupy the bank; stall only on backlog.
                for _ in 0..out.device_writes {
                    let done = banks.occupy(out.pa, clock, write_latency);
                    if done - clock > queue_depth_cycles {
                        clock = done - queue_depth_cycles;
                    }
                }
            }
        }
        let latency = clock - issue;
        latency_sum += latency;
        max_latency = max_latency.max(latency);
    }

    Ok(PerfReport {
        total_cycles: clock.max(banks.all_idle_at()).ceil() as u64,
        requests,
        reads,
        writes,
        mean_latency: latency_sum / requests as f64,
        max_latency: max_latency.ceil() as u64,
    })
}

#[cfg(test)]
mod banked_tests {
    use super::*;
    use twl_pcm::PcmConfig;
    use twl_wl_core::Nowl;
    use twl_workloads::{SyntheticWorkload, WorkloadConfig};

    fn workload(seed: u64) -> SyntheticWorkload {
        SyntheticWorkload::new(&WorkloadConfig {
            pages: 256,
            footprint: 128,
            zipf_alpha: 0.8,
            read_fraction: 0.5,
            seed,
        })
    }

    fn device() -> PcmDevice {
        let pcm = PcmConfig::builder()
            .pages(256)
            .mean_endurance(100_000_000)
            .seed(9)
            .build()
            .unwrap();
        PcmDevice::new(&pcm)
    }

    #[test]
    fn banked_model_runs_and_accounts_requests() {
        let config = MemCtrlConfig::default();
        let mut dev = device();
        let mut scheme = Nowl::new(256);
        let mut w = workload(1);
        let report =
            simulate_execution_banked(&config, &mut scheme, &mut dev, &mut w, 5_000).unwrap();
        assert_eq!(report.reads + report.writes, 5_000);
        assert!(report.total_cycles > 0);
    }

    #[test]
    fn banked_reads_cost_at_least_the_array_latency() {
        let config = MemCtrlConfig::for_bandwidth(10.0, 4096, 0.99);
        let mut dev = device();
        let mut scheme = Nowl::new(256);
        // An all-reads stream with huge gaps: mean latency approaches
        // the raw array read latency (no queueing, no write posting).
        let mut w = SyntheticWorkload::new(&WorkloadConfig {
            pages: 256,
            footprint: 128,
            zipf_alpha: 0.8,
            read_fraction: 1.0,
            seed: 2,
        });
        let report =
            simulate_execution_banked(&config, &mut scheme, &mut dev, &mut w, 1_000).unwrap();
        assert!(report.mean_latency >= 240.0, "mean {}", report.mean_latency);
        assert!(report.mean_latency < 400.0, "mean {}", report.mean_latency);
    }

    #[test]
    fn banked_and_coarse_agree_on_ordering() {
        use twl_core::{TossUpWearLeveling, TwlConfig};
        let config = MemCtrlConfig::for_bandwidth(2000.0, 4096, 0.5);
        let twl_config = TwlConfig::dac17();
        let run = |banked: bool, twl: bool| -> u64 {
            let mut dev = device();
            let mut w = workload(3);
            let mut scheme: Box<dyn WearLeveler> = if twl {
                Box::new(TossUpWearLeveling::new(&twl_config, dev.endurance_map()))
            } else {
                Box::new(Nowl::new(256))
            };
            let f = if banked {
                simulate_execution_banked
            } else {
                simulate_execution
            };
            f(&config, scheme.as_mut(), &mut dev, &mut w, 20_000)
                .unwrap()
                .total_cycles
        };
        assert!(run(false, true) > run(false, false));
        assert!(run(true, true) > run(true, false));
    }
}
