//! Timing-model configuration.

use serde::{Deserialize, Serialize};

/// Configuration of the open-loop memory-controller model.
///
/// # Examples
///
/// ```
/// use twl_memctrl::MemCtrlConfig;
///
/// // vips: 3309 MB/s of writes, 45 % of requests are writes.
/// let config = MemCtrlConfig::for_bandwidth(3309.0, 4096, 0.55);
/// assert!(config.inter_arrival_cycles > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemCtrlConfig {
    /// CPU clock the cycle counts refer to (Table 1: 2 GHz).
    pub cpu_hz: f64,
    /// Mean cycles between request arrivals (open-loop rate).
    pub inter_arrival_cycles: f64,
    /// Fraction of migration blocking that reaches the requester's
    /// critical path. Banked arrays and write buffering hide most of a
    /// background page migration; only the tail that collides with the
    /// demand request stalls it. 1.0 models fully-serializing swaps.
    pub blocking_visibility: f64,
}

impl MemCtrlConfig {
    /// Derives the arrival rate from a benchmark's measured *write*
    /// bandwidth: with `read_fraction` of requests being reads, the
    /// total request rate is `writes_per_sec / (1 − read_fraction)`.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth or page size is non-positive, or
    /// `read_fraction` is not in `[0, 1)`.
    #[must_use]
    pub fn for_bandwidth(write_bw_mbps: f64, page_size_bytes: u64, read_fraction: f64) -> Self {
        assert!(write_bw_mbps > 0.0, "bandwidth must be positive");
        assert!(page_size_bytes > 0, "page size must be positive");
        assert!(
            (0.0..1.0).contains(&read_fraction),
            "read fraction must be in [0, 1)"
        );
        let cpu_hz = 2.0e9;
        let writes_per_sec = write_bw_mbps * 1.0e6 / page_size_bytes as f64;
        let requests_per_sec = writes_per_sec / (1.0 - read_fraction);
        Self {
            cpu_hz,
            inter_arrival_cycles: cpu_hz / requests_per_sec,
            blocking_visibility: 0.2,
        }
    }
}

impl Default for MemCtrlConfig {
    /// A mid-range arrival rate (~500 MB/s of writes at 4 KB pages,
    /// half reads).
    fn default() -> Self {
        Self::for_bandwidth(500.0, 4096, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vips_arrival_rate() {
        let c = MemCtrlConfig::for_bandwidth(3309.0, 4096, 0.55);
        // 3309e6/4096 ≈ 807861 writes/s; /0.45 ≈ 1.795e6 req/s;
        // 2e9 / 1.795e6 ≈ 1114 cycles.
        assert!((c.inter_arrival_cycles - 1114.0).abs() < 5.0);
    }

    #[test]
    fn slower_benchmarks_have_larger_gaps() {
        let fast = MemCtrlConfig::for_bandwidth(3309.0, 4096, 0.5);
        let slow = MemCtrlConfig::for_bandwidth(12.0, 4096, 0.5);
        assert!(slow.inter_arrival_cycles > 100.0 * fast.inter_arrival_cycles);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = MemCtrlConfig::for_bandwidth(0.0, 4096, 0.5);
    }
}
