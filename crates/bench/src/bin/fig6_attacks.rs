//! Regenerates **Figure 6**: PCM lifetime (years) under the four attack
//! modes for BWL, SR, TWL_ap, TWL_swp and NOWL, plus the geometric mean.
//!
//! Paper reference points (§5.2, ideal = 6.6 years at ~8 GiB/s):
//! BWL survives the three classic attacks but "breaks down in 98
//! seconds" under the inconsistent attack; SR sits near 2.8 years under
//! everything; TWL_swp beats TWL_ap by ~21.7 % and bottoms out at 4.1
//! years under scan.
//!
//! The whole figure is one declarative scheme × workload matrix — both
//! axes are spec label lists, so the identical study can be submitted
//! to `twl-serviced` with
//! `twl-ctl submit --schemes "BWL,SR,..." --workloads "repeat,random,..."`
//! and its table is pinned by `results/golden/fig6_attacks.txt`.
//!
//! Run: `cargo run --release -p twl-bench --bin fig6_attacks [-- --pages N ...]`

use twl_bench::{print_table, ExperimentConfig};
use twl_lifetime::{lifetime_matrix, parse_spec_list, Calibration, SimLimits};
use twl_workloads::parse_workload_list;

/// The figure's axes, as data.
const SCHEMES: &str = "BWL,SR,TWL_ap,TWL_swp,NOWL";
const WORKLOADS: &str = "repeat,random,scan,inconsistent";

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("fig6_attacks", &config);
    let calibration = Calibration::attack_8gbps();
    println!(
        "Figure 6: lifetime under attacks (years); ideal = {:.1} years",
        calibration.ideal_years()
    );
    println!(
        "device: {} pages, mean endurance {}, seed {}\n",
        config.pages, config.mean_endurance, config.seed
    );

    let schemes = parse_spec_list(SCHEMES).expect("scheme axis parses");
    let workloads = parse_workload_list(WORKLOADS).expect("workload axis parses");

    let mut headers = vec!["scheme".to_owned()];
    headers.extend(workloads.iter().map(ToString::to_string));
    headers.push("Gmean".to_owned());

    let reports = lifetime_matrix(
        &config.pcm_config(),
        &schemes,
        &workloads,
        &SimLimits::default(),
    );
    let mut rows = Vec::new();
    for (i, spec) in schemes.iter().enumerate() {
        let row = &reports[i * workloads.len()..(i + 1) * workloads.len()];
        let mut cells = vec![spec.to_string()];
        let mut product = 1.0f64;
        for report in row {
            product *= report.years.max(1e-6);
            cells.push(format!("{:.2}", report.years));
        }
        #[allow(clippy::cast_precision_loss)]
        cells.push(format!("{:.2}", product.powf(1.0 / workloads.len() as f64)));
        rows.push(cells);
    }
    let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&headers, &rows);
    twl_bench::finish_telemetry();
}
