//! Regenerates **Figure 6**: PCM lifetime (years) under the four attack
//! modes for BWL, SR, TWL_ap, TWL_swp and NOWL, plus the geometric mean.
//!
//! Paper reference points (§5.2, ideal = 6.6 years at ~8 GiB/s):
//! BWL survives the three classic attacks but "breaks down in 98
//! seconds" under the inconsistent attack; SR sits near 2.8 years under
//! everything; TWL_swp beats TWL_ap by ~21.7 % and bottoms out at 4.1
//! years under scan.
//!
//! Run: `cargo run --release -p twl-bench --bin fig6_attacks [-- --pages N ...]`

use twl_attacks::AttackKind;
use twl_bench::{print_table, ExperimentConfig};
use twl_lifetime::{attack_matrix, Calibration, SchemeKind, SimLimits};

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("fig6_attacks", &config);
    let calibration = Calibration::attack_8gbps();
    println!(
        "Figure 6: lifetime under attacks (years); ideal = {:.1} years",
        calibration.ideal_years()
    );
    println!(
        "device: {} pages, mean endurance {}, seed {}\n",
        config.pages, config.mean_endurance, config.seed
    );

    let headers = [
        "scheme",
        "repeat",
        "random",
        "scan",
        "inconsistent",
        "Gmean",
    ];
    let reports = attack_matrix(
        &config.pcm_config(),
        &SchemeKind::FIG6,
        &AttackKind::ALL,
        &SimLimits::default(),
    );
    let mut rows = Vec::new();
    for (i, kind) in SchemeKind::FIG6.iter().enumerate() {
        let row = &reports[i * AttackKind::ALL.len()..(i + 1) * AttackKind::ALL.len()];
        let mut cells = vec![kind.label().to_owned()];
        let mut product = 1.0f64;
        for report in row {
            product *= report.years.max(1e-6);
            cells.push(format!("{:.2}", report.years));
        }
        cells.push(format!("{:.2}", product.powf(0.25)));
        rows.push(cells);
    }
    print_table(&headers, &rows);
    twl_bench::finish_telemetry();
}
