//! Robustness check for Figure 6: the attack-lifetime grid across
//! several independent process-variation draws (seeds), reported as
//! mean ± sample standard deviation.
//!
//! The paper reports one simulated device; this sweep shows which of
//! its comparisons are stable properties of the schemes and which are
//! luck of the endurance draw.
//!
//! Run: `cargo run --release -p twl-bench --bin fig6_seeds [-- --pages N ...]`

use twl_attacks::AttackKind;
use twl_bench::{print_table, ExperimentConfig};
use twl_lifetime::{attack_matrix, SchemeKind, SimLimits};
use twl_pcm::PcmConfig;

const SEEDS: [u64; 5] = [42, 7, 1234, 9001, 31337];

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("fig6_seeds", &config);
    println!(
        "Figure 6 across {} PV draws (mean ± sd, years)",
        SEEDS.len()
    );
    println!(
        "device: {} pages, mean endurance {}\n",
        config.pages, config.mean_endurance
    );

    let schemes = SchemeKind::FIG6;
    let attacks = AttackKind::ALL;
    // grid[scheme][attack] -> per-seed years.
    let mut grid = vec![vec![Vec::new(); attacks.len()]; schemes.len()];
    for &seed in &SEEDS {
        let pcm = PcmConfig::scaled(config.pages, config.mean_endurance, seed);
        let reports = attack_matrix(&pcm, &schemes, &attacks, &SimLimits::default());
        for (i, report) in reports.iter().enumerate() {
            grid[i / attacks.len()][i % attacks.len()].push(report.years);
        }
    }

    let mut headers: Vec<String> = vec!["scheme".into()];
    headers.extend(attacks.iter().map(ToString::to_string));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (i, &scheme) in schemes.iter().enumerate() {
        let mut cells = vec![scheme.label().to_owned()];
        for samples in &grid[i] {
            let n = samples.len() as f64;
            let mean = samples.iter().sum::<f64>() / n;
            let var = samples.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / (n - 1.0);
            cells.push(format!("{mean:.2}±{:.2}", var.sqrt()));
        }
        rows.push(cells);
    }
    print_table(&header_refs, &rows);
    println!(
        "\nStable claims: TWL_swp > TWL_ap, TWL robust to 'inconsistent', BWL collapse, SR flat."
    );
    twl_bench::finish_telemetry();
}
