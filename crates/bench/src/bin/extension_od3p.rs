//! Extension study: graceful degradation with On-Demand Page Pairing
//! (the paper's reference \[1\], Asadinia+ DAC 2014).
//!
//! Every Fig. 6/8 lifetime in this repository ends at the *first* page
//! failure. OD3P instead re-pairs failed pages onto healthy hosts and
//! keeps serving. This bench compares, per attack: writes absorbed
//! until first failure (the paper's metric) vs until OD3P exhausts its
//! degradation budget — quantifying how much life page pairing buys
//! *after* the point where the other schemes stop counting.
//!
//! Run: `cargo run --release -p twl-bench --bin extension_od3p [-- --pages N ...]`

use twl_attacks::{Attack, AttackKind, AttackStream};
use twl_baselines::{Od3pConfig, OnDemandPagePairing};
use twl_bench::{print_table, ExperimentConfig};
use twl_pcm::PcmDevice;
use twl_wl_core::WearLeveler;

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("extension_od3p", &config);
    println!("OD3P graceful degradation under attack");
    println!(
        "device: {} pages, mean endurance {}, seed {} (degradation budget: 50% of pages)\n",
        config.pages, config.mean_endurance, config.seed
    );

    let headers = [
        "attack",
        "1st failure (writes)",
        "OD3P end (writes)",
        "extension",
        "pages failed",
    ];
    let mut rows = Vec::new();
    for kind in AttackKind::ALL {
        let mut device = PcmDevice::new(&config.pcm_config());
        let mut od3p = OnDemandPagePairing::new(&Od3pConfig::default(), &device);
        let mut attack = Attack::new(kind, od3p.page_count(), config.seed);
        let mut feedback = None;
        let mut writes = 0u64;
        let mut first_failure_at = None;
        loop {
            let la = attack.next_write(feedback.as_ref());
            match od3p.write(la, &mut device) {
                Ok(out) => {
                    writes += 1;
                    feedback = Some(out);
                    if first_failure_at.is_none() && od3p.failed_pages() > 0 {
                        first_failure_at = Some(writes);
                    }
                }
                Err(_) => break,
            }
        }
        let first = first_failure_at.unwrap_or(writes);
        rows.push(vec![
            kind.to_string(),
            first.to_string(),
            writes.to_string(),
            format!("{:.1}x", writes as f64 / first.max(1) as f64),
            od3p.failed_pages().to_string(),
        ]);
    }
    print_table(&headers, &rows);
    println!("\n('extension' = total serviceable writes over writes to the first failure)");
    twl_bench::finish_telemetry();
}
