//! Regenerates **Figure 8**: lifetime normalized to ideal for every
//! PARSEC benchmark under BWL, SR, TWL and NOWL.
//!
//! Paper averages: SR ≈ 44 %, BWL ≈ 75.6 %, TWL ≈ 79.6 % of ideal.
//!
//! Run: `cargo run --release -p twl-bench --bin fig8_lifetime [-- --pages N ...]`

use twl_bench::{print_table, ExperimentConfig};
use twl_lifetime::{workload_matrix, SchemeKind, SimLimits};
use twl_workloads::ParsecBenchmark;

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("fig8_lifetime", &config);
    println!("Figure 8: normalized lifetime under PARSEC workloads");
    println!(
        "device: {} pages, mean endurance {}, seed {}\n",
        config.pages, config.mean_endurance, config.seed
    );

    let schemes = SchemeKind::FIG8;
    let mut headers: Vec<&str> = vec!["benchmark"];
    headers.extend(schemes.iter().map(|s| s.label()));
    let mut sums = vec![0.0f64; schemes.len()];
    let mut rows = Vec::new();

    let reports = workload_matrix(
        &config.pcm_config(),
        &schemes,
        &ParsecBenchmark::ALL,
        &SimLimits::default(),
    );
    for (b, bench) in ParsecBenchmark::ALL.iter().enumerate() {
        let mut cells = vec![bench.name().to_owned()];
        for (i, _) in schemes.iter().enumerate() {
            let report = &reports[i * ParsecBenchmark::ALL.len() + b];
            sums[i] += report.normalized_lifetime();
            cells.push(format!("{:.3}", report.normalized_lifetime()));
        }
        rows.push(cells);
    }

    let mut mean_row = vec!["MEAN".to_owned()];
    for sum in &sums {
        mean_row.push(format!("{:.3}", sum / ParsecBenchmark::ALL.len() as f64));
    }
    rows.push(mean_row);
    print_table(&headers, &rows);
    println!("\npaper means: BWL 0.756, SR 0.44, TWL 0.796");
    twl_bench::finish_telemetry();
}
