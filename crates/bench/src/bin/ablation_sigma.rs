//! Extension study: how does the strength of process variation change
//! the picture?
//!
//! The paper fixes σ = 11 % of the mean. This sweep varies σ and runs
//! the scan attack (TWL's worst case) plus the inconsistent attack for
//! the main schemes. Expectations: at σ = 0 every PV-aware mechanism
//! degenerates (all pages equal — nothing to exploit, nothing to
//! protect); as σ grows, the gap between PV-aware TWL and PV-blind SR
//! widens, and the inconsistent attack's payoff against BWL grows with
//! the weak pages' weakness.
//!
//! Each sigma row is a scheme × attack matrix submitted to the shared
//! sweep runner — the cells run on the worker pool with the batched
//! fast path.
//!
//! Run: `cargo run --release -p twl-bench --bin ablation_sigma [-- --pages N ...]`

use twl_attacks::AttackKind;
use twl_bench::{print_table, ExperimentConfig};
use twl_lifetime::{attack_matrix, SchemeKind, SimLimits};
use twl_pcm::PcmConfig;

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("ablation_sigma", &config);
    println!("PV-strength sweep: lifetime (years) vs endurance sigma");
    println!(
        "device: {} pages, mean endurance {}, seed {}\n",
        config.pages, config.mean_endurance, config.seed
    );

    let headers = [
        "sigma",
        "SR scan",
        "TWL scan",
        "SR incons.",
        "TWL incons.",
        "BWL incons.",
    ];
    let mut rows = Vec::new();
    for sigma in [0.0, 0.05, 0.11, 0.18, 0.25] {
        let pcm = PcmConfig::builder()
            .pages(config.pages)
            .mean_endurance(config.mean_endurance)
            .sigma_fraction(sigma)
            .seed(config.seed)
            .build()
            .expect("valid sweep config");
        // Scheme-major order: SR scan, SR incons., TWL scan, TWL incons.
        let main = attack_matrix(
            &pcm,
            &[SchemeKind::Sr, SchemeKind::TwlSwp],
            &[AttackKind::Scan, AttackKind::Inconsistent],
            &SimLimits::default(),
        );
        let bwl = attack_matrix(
            &pcm,
            &[SchemeKind::Bwl],
            &[AttackKind::Inconsistent],
            &SimLimits::default(),
        );
        rows.push(vec![
            format!("{:.0}%", sigma * 100.0),
            format!("{:.2}", main[0].years),
            format!("{:.2}", main[2].years),
            format!("{:.2}", main[1].years),
            format!("{:.2}", main[3].years),
            format!("{:.2}", bwl[0].years),
        ]);
    }
    print_table(&headers, &rows);
    println!("\n(paper operates at the 11% row)");
    twl_bench::finish_telemetry();
}
