//! Extension study: how does the strength of process variation change
//! the picture?
//!
//! The paper fixes σ = 11 % of the mean. This sweep varies σ and runs
//! the scan attack (TWL's worst case) plus the inconsistent attack for
//! the main schemes. Expectations: at σ = 0 every PV-aware mechanism
//! degenerates (all pages equal — nothing to exploit, nothing to
//! protect); as σ grows, the gap between PV-aware TWL and PV-blind SR
//! widens, and the inconsistent attack's payoff against BWL grows with
//! the weak pages' weakness.
//!
//! Run: `cargo run --release -p twl-bench --bin ablation_sigma [-- --pages N ...]`

use twl_attacks::{Attack, AttackKind};
use twl_bench::{print_table, ExperimentConfig};
use twl_lifetime::{build_scheme, run_attack, Calibration, SchemeKind, SimLimits};
use twl_pcm::{PcmConfig, PcmDevice};

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("ablation_sigma", &config);
    println!("PV-strength sweep: lifetime (years) vs endurance sigma");
    println!(
        "device: {} pages, mean endurance {}, seed {}\n",
        config.pages, config.mean_endurance, config.seed
    );

    let headers = [
        "sigma",
        "SR scan",
        "TWL scan",
        "SR incons.",
        "TWL incons.",
        "BWL incons.",
    ];
    let mut rows = Vec::new();
    for sigma in [0.0, 0.05, 0.11, 0.18, 0.25] {
        let pcm = PcmConfig::builder()
            .pages(config.pages)
            .mean_endurance(config.mean_endurance)
            .sigma_fraction(sigma)
            .seed(config.seed)
            .build()
            .expect("valid sweep config");
        let run = |kind: SchemeKind, attack_kind: AttackKind| -> f64 {
            let mut device = PcmDevice::new(&pcm);
            let mut scheme =
                build_scheme(kind, &device).unwrap_or_else(|e| panic!("cannot build {kind}: {e}"));
            let mut attack = Attack::new(attack_kind, scheme.page_count(), config.seed);
            run_attack(
                scheme.as_mut(),
                &mut device,
                &mut attack,
                &SimLimits::default(),
                &Calibration::attack_8gbps(),
            )
            .years
        };
        rows.push(vec![
            format!("{:.0}%", sigma * 100.0),
            format!("{:.2}", run(SchemeKind::Sr, AttackKind::Scan)),
            format!("{:.2}", run(SchemeKind::TwlSwp, AttackKind::Scan)),
            format!("{:.2}", run(SchemeKind::Sr, AttackKind::Inconsistent)),
            format!("{:.2}", run(SchemeKind::TwlSwp, AttackKind::Inconsistent)),
            format!("{:.2}", run(SchemeKind::Bwl, AttackKind::Inconsistent)),
        ]);
    }
    print_table(&headers, &rows);
    println!("\n(paper operates at the 11% row)");
    twl_bench::finish_telemetry();
}
