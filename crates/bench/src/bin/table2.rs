//! Regenerates **Table 2**: per-PARSEC-benchmark write bandwidth, ideal
//! lifetime, and lifetime without wear leveling.
//!
//! The bandwidths are the paper's measured inputs; the ideal lifetimes
//! come from the calibrated years conversion (`DESIGN.md` §3) and the
//! NOWL lifetimes from simulating each calibrated synthetic workload
//! against an unprotected device until a page dies.
//!
//! Run: `cargo run --release -p twl-bench --bin table2 [-- --pages N ...]`

use twl_bench::{print_table, ExperimentConfig};
use twl_lifetime::{build_scheme, run_workload, Calibration, SchemeKind, SimLimits};
use twl_workloads::ParsecBenchmark;

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("table2", &config);
    println!("Table 2: PARSEC benchmarks (simulated NOWL vs paper)");
    println!(
        "device: {} pages, mean endurance {}, seed {}\n",
        config.pages, config.mean_endurance, config.seed
    );
    let headers = [
        "benchmark",
        "BW (MB/s)",
        "ideal (yr)",
        "paper ideal",
        "no-WL (yr)",
        "paper no-WL",
    ];
    let mut rows = Vec::new();
    for bench in ParsecBenchmark::ALL {
        let calibration = Calibration::for_bandwidth_mbps(bench.write_bandwidth_mbps());
        let mut device = config.device();
        let mut scheme = build_scheme(SchemeKind::Nowl, &device).expect("NOWL always builds");
        let mut workload = bench.workload(config.pages, config.seed);
        let report = run_workload(
            scheme.as_mut(),
            &mut device,
            &mut workload,
            bench.name(),
            &SimLimits::default(),
            &calibration,
        );
        rows.push(vec![
            bench.name().to_owned(),
            format!("{:.0}", bench.write_bandwidth_mbps()),
            format!("{:.1}", calibration.ideal_years()),
            format!("{:.1}", bench.ideal_years_paper()),
            format!("{:.1}", report.years),
            format!("{:.1}", bench.nowl_years_paper()),
        ]);
    }
    print_table(&headers, &rows);
    twl_bench::finish_telemetry();
}
