//! Regenerates **§5.4**: TWL's storage and logic-gate overhead.
//!
//! Paper numbers (32 GB device, 4 KB pages): 7 + 27 + 23 + 23 = 80 bits
//! per page (2.5·10⁻³ of capacity); <128-gate Feistel RNG + 718 gates of
//! divider/comparators ≈ 840 gates.
//!
//! Run: `cargo run -p twl-bench --bin overhead_table`

use twl_bench::{print_table, ExperimentConfig};
use twl_core::{TwlConfig, TwlOverhead};
use twl_pcm::PcmConfig;

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("overhead_table", &config);
    let scaled = config.pcm_config();
    let nominal = PcmConfig::nominal_dac17();
    let twl = TwlConfig::dac17();

    println!("Section 5.4: TWL design overhead\n");
    let headers = ["quantity", "nominal 32GB", "scaled device", "paper"];
    let devices = [
        TwlOverhead::compute(&twl, &nominal),
        TwlOverhead::compute(&twl, &scaled),
    ];
    let rows = vec![
        row("WCT bits/page", &devices, |o| o.wct_bits.to_string(), "7"),
        row("ET bits/page", &devices, |o| o.et_bits.to_string(), "27"),
        row("RT bits/page", &devices, |o| o.rt_bits.to_string(), "23"),
        row(
            "SWPT bits/page",
            &devices,
            |o| o.swpt_bits.to_string(),
            "23",
        ),
        row(
            "total bits/page",
            &devices,
            |o| o.bits_per_page().to_string(),
            "80",
        ),
        row(
            "storage ratio",
            &devices,
            |o| format!("{:.2e}", o.storage_ratio()),
            "2.5e-3",
        ),
        row("RNG gates", &devices, |o| o.rng_gates.to_string(), "<128"),
        row(
            "divider+comparator gates",
            &devices,
            |o| o.arithmetic_gates.to_string(),
            "718",
        ),
        row(
            "total gates",
            &devices,
            |o| o.total_gates().to_string(),
            "~840",
        ),
    ];
    print_table(&headers, &rows);
    twl_bench::finish_telemetry();
}

fn row(
    name: &str,
    devices: &[TwlOverhead; 2],
    f: impl Fn(&TwlOverhead) -> String,
    paper: &str,
) -> Vec<String> {
    vec![
        name.to_owned(),
        f(&devices[0]),
        f(&devices[1]),
        paper.to_owned(),
    ]
}
