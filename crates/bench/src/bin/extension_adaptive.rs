//! Extension study: security-level-adjustable refresh (combining the
//! paper's references \[7\] and \[11\]).
//!
//! Static Security Refresh must pick one refresh rate for all traffic:
//! fast enough to survive attacks, slow enough not to waste writes on
//! benign workloads. When the configured rate is too slow for the
//! endurance scale (here: the paper's nominal interval of 128 on a
//! scaled device), a repeat attack kills it. The adaptive variant runs
//! the slow rate by default and boosts 8x while the Misra-Gries monitor
//! flags write-stream concentration — attack robustness at benign-rate
//! overhead.
//!
//! Run: `cargo run --release -p twl-bench --bin extension_adaptive [-- --pages N ...]`

use twl_attacks::{Attack, AttackKind};
use twl_baselines::{AdaptiveSecurityRefresh, SecurityRefresh, SrConfig};
use twl_bench::{print_table, ExperimentConfig};
use twl_lifetime::{run_attack, run_workload, Calibration, SimLimits};
use twl_pcm::PcmDevice;
use twl_wl_core::WearLeveler;
use twl_workloads::ParsecBenchmark;

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("extension_adaptive", &config);
    // Deliberately use the paper's *nominal* intervals (128/128), which
    // are too slow for the scaled endurance — the failure the adaptive
    // variant exists to fix.
    let sr_config = SrConfig::for_pages(config.pages).expect("power-of-two pages");
    println!("Adaptive security levels: SR at nominal (slow) refresh intervals");
    println!(
        "device: {} pages, mean endurance {}, seed {}; intervals {}/{} (boost 8x on alarm)\n",
        config.pages,
        config.mean_endurance,
        config.seed,
        sr_config.inner_interval,
        sr_config.outer_interval
    );

    let headers = [
        "scheme",
        "repeat (yr)",
        "inconsistent (yr)",
        "benign extra writes",
    ];
    let mut rows = Vec::new();
    for adaptive in [false, true] {
        let build = || -> Box<dyn WearLeveler> {
            if adaptive {
                Box::new(
                    AdaptiveSecurityRefresh::new(&sr_config, config.pages, 8)
                        .expect("valid config"),
                )
            } else {
                Box::new(SecurityRefresh::new(&sr_config, config.pages).expect("valid config"))
            }
        };
        let mut attack_years = Vec::new();
        for kind in [AttackKind::Repeat, AttackKind::Inconsistent] {
            let mut device = PcmDevice::new(&config.pcm_config());
            let mut scheme = build();
            let mut attack = Attack::new(kind, scheme.page_count(), config.seed);
            let report = run_attack(
                scheme.as_mut(),
                &mut device,
                &mut attack,
                &SimLimits::default(),
                &Calibration::attack_8gbps(),
            );
            attack_years.push(report.years);
        }
        // Benign overhead on a PARSEC workload.
        let bench = ParsecBenchmark::Canneal;
        let mut device = PcmDevice::new(&config.pcm_config());
        let mut scheme = build();
        let mut workload = bench.workload(config.pages, config.seed);
        let limits = SimLimits {
            max_logical_writes: 2_000_000,
        };
        let benign = run_workload(
            scheme.as_mut(),
            &mut device,
            &mut workload,
            bench.name(),
            &limits,
            &Calibration::for_bandwidth_mbps(bench.write_bandwidth_mbps()),
        );
        rows.push(vec![
            if adaptive {
                "SR_adaptive"
            } else {
                "SR (static)"
            }
            .to_owned(),
            format!("{:.2}", attack_years[0]),
            format!("{:.2}", attack_years[1]),
            format!("{:.3}", benign.extra_write_ratio),
        ]);
    }
    print_table(&headers, &rows);
    twl_bench::finish_telemetry();
}
