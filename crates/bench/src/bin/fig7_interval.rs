//! Regenerates **Figure 7**: choosing the toss-up interval.
//!
//! * (a) swap/write ratio vs toss-up interval, geometric mean over the
//!   PARSEC workloads (paper: 37.9 % at interval 1, falling ∝ 1/interval,
//!   ≈2.2 % extra writes at 32);
//! * (b) lifetime under the scan attack vs toss-up interval (paper:
//!   crosses the 3-year server-replacement floor near interval 32–64).
//!
//! The whole figure is two declarative [`SchemeSpec`] matrices —
//! `TWL_swp[ti=N]` for each interval — submitted to the shared sweep
//! runner, so the cells run on the worker pool with the batched fast
//! path, and the same study can be submitted to `twl-serviced` with
//! `twl-ctl submit --schemes "TWL_swp[ti=1],TWL_swp[ti=2],..."`.
//!
//! Run: `cargo run --release -p twl-bench --bin fig7_interval [-- --pages N ...]`

use twl_bench::{print_table, ExperimentConfig};
use twl_lifetime::{lifetime_matrix, SchemeSpec, SimLimits};
use twl_pcm::PcmConfig;
use twl_workloads::{parse_workload_list, ParsecBenchmark, WorkloadSpec};

/// Writes driven per benchmark for the swap-ratio measurement.
const RATIO_WRITES: u64 = 400_000;

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("fig7_interval", &config);
    println!("Figure 7: toss-up interval selection");
    println!(
        "device: {} pages, mean endurance {} (attack runs), seed {}\n",
        config.pages, config.mean_endurance, config.seed
    );

    let intervals = [1u64, 2, 4, 8, 16, 32, 64, 128];
    let specs: Vec<SchemeSpec> = intervals
        .iter()
        .map(|i| {
            format!("TWL_swp[ti={i}]")
                .parse()
                .expect("interval spec label parses")
        })
        .collect();

    // Both panels' workload axes, as data.
    let benchmarks: Vec<WorkloadSpec> = ParsecBenchmark::ALL.map(WorkloadSpec::from).to_vec();
    let scan = parse_workload_list("scan").expect("scan axis parses");

    // (a) Swap/write ratio over PARSEC, on a wear-proof device so the
    // measurement window is identical across intervals.
    let ratio_pcm = PcmConfig::scaled(config.pages, 100_000_000, config.seed);
    let ratio_limits = SimLimits {
        max_logical_writes: RATIO_WRITES,
    };
    let ratio_reports = lifetime_matrix(&ratio_pcm, &specs, &benchmarks, &ratio_limits);

    // (b) Lifetime under the scan attack on the endurance-limited device.
    let scan_reports = lifetime_matrix(&config.pcm_config(), &specs, &scan, &SimLimits::default());

    let headers = [
        "interval",
        "swap/write (Gmean)",
        "extra writes",
        "scan lifetime (yr)",
    ];
    let per_spec = ParsecBenchmark::ALL.len();
    let rows: Vec<Vec<String>> = intervals
        .iter()
        .enumerate()
        .map(|(i, interval)| {
            let chunk = &ratio_reports[i * per_spec..(i + 1) * per_spec];
            let log_sum: f64 = chunk.iter().map(|r| r.swap_per_write.max(1e-9).ln()).sum();
            let gmean_ratio = (log_sum / per_spec as f64).exp();
            let mean_extra =
                chunk.iter().map(|r| r.extra_write_ratio).sum::<f64>() / per_spec as f64;
            vec![
                interval.to_string(),
                format!("{:.3}", gmean_ratio),
                format!("{:.3}", mean_extra),
                format!("{:.2}", scan_reports[i].years),
            ]
        })
        .collect();
    print_table(&headers, &rows);
    println!("\nminimum server-replacement requirement: 3 years (paper picks interval 32)");
    twl_bench::finish_telemetry();
}
