//! Regenerates **Figure 7**: choosing the toss-up interval.
//!
//! * (a) swap/write ratio vs toss-up interval, geometric mean over the
//!   PARSEC workloads (paper: 37.9 % at interval 1, falling ∝ 1/interval,
//!   ≈2.2 % extra writes at 32);
//! * (b) lifetime under the scan attack vs toss-up interval (paper:
//!   crosses the 3-year server-replacement floor near interval 32–64).
//!
//! Run: `cargo run --release -p twl-bench --bin fig7_interval [-- --pages N ...]`

use twl_attacks::{Attack, AttackKind};
use twl_bench::{print_table, ExperimentConfig};
use twl_core::{TossUpWearLeveling, TwlConfig};
use twl_lifetime::{run_attack, run_workload, Calibration, SimLimits};
use twl_pcm::{PcmConfig, PcmDevice};
use twl_wl_core::WearLeveler;
use twl_workloads::ParsecBenchmark;

/// Writes driven per benchmark for the swap-ratio measurement.
const RATIO_WRITES: u64 = 400_000;

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("fig7_interval", &config);
    println!("Figure 7: toss-up interval selection");
    println!(
        "device: {} pages, mean endurance {} (attack runs), seed {}\n",
        config.pages, config.mean_endurance, config.seed
    );

    let intervals = [1u64, 2, 4, 8, 16, 32, 64, 128];
    let headers = [
        "interval",
        "swap/write (Gmean)",
        "extra writes",
        "scan lifetime (yr)",
    ];
    let mut rows = Vec::new();
    for &interval in &intervals {
        // (a) Swap/write ratio over PARSEC, on a wear-proof device so
        // the measurement window is identical across intervals.
        let ratio_pcm = PcmConfig::scaled(config.pages, 100_000_000, config.seed);
        let mut log_sum = 0.0f64;
        let mut extra_sum = 0.0f64;
        for bench in ParsecBenchmark::ALL {
            let mut device = PcmDevice::new(&ratio_pcm);
            let twl_config = TwlConfig::builder()
                .toss_up_interval(interval)
                .build()
                .expect("interval is positive");
            let mut twl = TossUpWearLeveling::new(&twl_config, device.endurance_map());
            let mut workload = bench.workload(config.pages, config.seed);
            let limits = SimLimits {
                max_logical_writes: RATIO_WRITES,
            };
            let report = run_workload(
                &mut twl,
                &mut device,
                &mut workload,
                bench.name(),
                &limits,
                &Calibration::for_bandwidth_mbps(bench.write_bandwidth_mbps()),
            );
            log_sum += report.swap_per_write.max(1e-9).ln();
            extra_sum += report.extra_write_ratio;
        }
        let gmean_ratio = (log_sum / ParsecBenchmark::ALL.len() as f64).exp();
        let mean_extra = extra_sum / ParsecBenchmark::ALL.len() as f64;

        // (b) Lifetime under the scan attack.
        let mut device = config.device();
        let twl_config = TwlConfig::builder()
            .toss_up_interval(interval)
            .build()
            .expect("interval is positive");
        let mut twl = TossUpWearLeveling::new(&twl_config, device.endurance_map());
        let mut attack = Attack::new(AttackKind::Scan, twl.page_count(), config.seed);
        let report = run_attack(
            &mut twl,
            &mut device,
            &mut attack,
            &SimLimits::default(),
            &Calibration::attack_8gbps(),
        );

        rows.push(vec![
            interval.to_string(),
            format!("{:.3}", gmean_ratio),
            format!("{:.3}", mean_extra),
            format!("{:.2}", report.years),
        ]);
    }
    print_table(&headers, &rows);
    println!("\nminimum server-replacement requirement: 3 years (paper picks interval 32)");
    twl_bench::finish_telemetry();
}
