//! Trace tooling: generate, inspect, and replay binary memory traces.
//!
//! The paper's methodology collects gem5 traces once and replays them in
//! loops (§5.1); this tool provides the same workflow for the synthetic
//! workloads, via the `twl-workloads` binary codec:
//!
//! * `gen <workload> <commands> <file>` — write a trace file from any
//!   synthetic workload spec (e.g. `canneal` or `vips[alpha=1.2]`).
//! * `stat <file>` — print command counts and page-popularity stats.
//! * `replay <file> <scheme> [loops]` — drive a scheme (any
//!   [`twl_lifetime::SchemeSpec`] label, e.g. `TWL_swp[ti=64]`) with
//!   the trace's writes (looping, as the paper does) until wear-out or
//!   the loop budget ends.
//!
//! Run: `cargo run --release -p twl-bench --bin trace_tool -- gen canneal 100000 /tmp/canneal.trace`

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::exit;
use twl_lifetime::{build_scheme_spec, Calibration, SchemeSpec};
use twl_pcm::{PcmConfig, PcmDevice};
use twl_workloads::{read_trace, write_trace, MemCmd, WorkloadSpec};

const PAGES: u64 = 4096;

fn usage() -> ! {
    eprintln!(
        "usage:\n  trace_tool gen <workload> <commands> <file>\n  trace_tool stat <file>\n  \
         trace_tool replay <file> <scheme spec> [loops]"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    twl_bench::init_telemetry(
        "trace_tool",
        &twl_bench::ExperimentConfig {
            pages: PAGES,
            mean_endurance: 20_000,
            seed: 42,
        },
    );
    let result = match args.first().map(String::as_str) {
        Some("gen") if args.len() == 4 => generate(&args[1], &args[2], &args[3]),
        Some("stat") if args.len() == 2 => stat(&args[1]),
        Some("replay") if args.len() == 3 || args.len() == 4 => {
            replay(&args[1], &args[2], args.get(3).map(String::as_str))
        }
        _ => usage(),
    };
    twl_bench::finish_telemetry();
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn generate(label: &str, count: &str, path: &str) -> Result<(), Box<dyn std::error::Error>> {
    // One parser for every workload label in the workspace: the same
    // grammar `twl-ctl --workloads` and the sweep matrices accept.
    let spec: WorkloadSpec = label.parse()?;
    let count: u64 = count.parse()?;
    let mut built = spec.build(PAGES, 42)?;
    let workload = built.as_synthetic_mut().ok_or(
        "gen needs a synthetic generator (a PARSEC benchmark label); \
         attacks and TRACE specs do not emit read/write command streams",
    )?;
    let trace: Vec<MemCmd> = (0..count).map(|_| workload.next_cmd()).collect();
    let mut writer = BufWriter::new(File::create(path)?);
    write_trace(&mut writer, &trace)?;
    println!("wrote {count} commands of {label} to {path}");
    Ok(())
}

fn stat(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let trace = read_trace(BufReader::new(File::open(path)?))?;
    let writes = trace.iter().filter(|c| c.is_write()).count();
    let mut page_writes: HashMap<u64, u64> = HashMap::new();
    for cmd in trace.iter().filter(|c| c.is_write()) {
        *page_writes.entry(cmd.la.index()).or_default() += 1;
    }
    let mut ranked: Vec<u64> = page_writes.values().copied().collect();
    ranked.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "{path}: {} commands ({writes} writes, {} reads)",
        trace.len(),
        trace.len() - writes
    );
    println!("distinct pages written: {}", page_writes.len());
    if let Some(&top) = ranked.first() {
        println!(
            "hottest page share: {:.4} ({top} of {writes} writes)",
            top as f64 / writes.max(1) as f64
        );
    }
    Ok(())
}

fn replay(
    path: &str,
    scheme_name: &str,
    loops: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let spec: SchemeSpec = scheme_name.parse()?;
    let max_loops: u64 = loops.unwrap_or("100000").parse()?;
    let trace = read_trace(BufReader::new(File::open(path)?))?;
    if trace.is_empty() {
        return Err("empty trace".into());
    }
    let pcm = PcmConfig::scaled(PAGES, 20_000, 42);
    let mut device = PcmDevice::new(&pcm);
    let mut scheme = build_scheme_spec(&spec, &device)?;
    let logical = scheme.page_count();

    let mut total_writes = 0u64;
    let mut completed = false;
    'outer: for _ in 0..max_loops {
        for cmd in trace.iter().filter(|c| c.is_write()) {
            let la = twl_pcm::LogicalPageAddr::new(cmd.la.index() % logical);
            if scheme.write(la, &mut device).is_err() {
                completed = true;
                break 'outer;
            }
            total_writes += 1;
        }
    }
    let fraction = device.total_writes() as f64 / device.endurance_map().total() as f64;
    println!(
        "{scheme_name} replayed {path}: {total_writes} writes{}, capacity fraction {fraction:.3}",
        if completed {
            " to wear-out"
        } else {
            " (loop budget hit)"
        },
    );
    println!(
        "at 8 GiB/s that is {:.2} years",
        Calibration::attack_8gbps().years(fraction)
    );
    Ok(())
}
