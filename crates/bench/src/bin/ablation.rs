//! Ablations of TWL's design choices (DESIGN.md §5), beyond what the
//! paper reports:
//!
//! * pairing strategy: strong-weak vs adjacent vs random;
//! * toss-up on factory (initial) vs remaining (dynamic) endurance;
//! * optimized 2-write vs naive 3-write swap-then-write;
//! * inter-pair swap interval.
//!
//! Each variant runs the four Fig. 6 attacks; the table reports the
//! geometric-mean lifetime and the extra-write ratio. A second table
//! ablates BWL's band-repair pass (benign lifetime vs attack
//! robustness).
//!
//! Run: `cargo run --release -p twl-bench --bin ablation [-- --pages N ...]`

use twl_attacks::{Attack, AttackKind};
use twl_baselines::{BloomFilterWl, BwlConfig};
use twl_bench::{print_table, ExperimentConfig};
use twl_core::{PairingStrategy, TossUpWearLeveling, TwlConfig, TwlConfigBuilder};
use twl_lifetime::{run_attack, run_workload, Calibration, SimLimits};
use twl_pcm::PcmDevice;
use twl_workloads::ParsecBenchmark;

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("ablation", &config);
    println!("TWL design-choice ablations (Gmean lifetime over the four attacks)");
    println!(
        "device: {} pages, mean endurance {}, seed {}\n",
        config.pages, config.mean_endurance, config.seed
    );

    let variants: Vec<(&str, TwlConfig)> = vec![
        (
            "baseline (swp, initial E, 2-write swap)",
            TwlConfig::dac17(),
        ),
        ("adjacent pairing", TwlConfig::dac17_adjacent()),
        (
            "random pairing",
            build(|b| {
                b.pairing(PairingStrategy::Random { seed: 7 });
            }),
        ),
        (
            "dynamic (remaining) endurance",
            build(|b| {
                b.dynamic_endurance(true);
            }),
        ),
        (
            "naive 3-write swap",
            build(|b| {
                b.optimized_swap(false);
            }),
        ),
        (
            "inter-pair interval 32",
            build(|b| {
                b.inter_pair_swap_interval(32);
            }),
        ),
        (
            "inter-pair interval 512",
            build(|b| {
                b.inter_pair_swap_interval(512);
            }),
        ),
        (
            "no inter-pair swap",
            build(|b| {
                b.inter_pair_swap_interval(u64::MAX);
            }),
        ),
    ];

    let headers = ["variant", "Gmean (yr)", "worst (yr)", "extra writes"];
    let mut rows = Vec::new();
    for (name, twl_config) in variants {
        let mut product = 1.0f64;
        let mut worst = f64::INFINITY;
        let mut extra = 0.0f64;
        for kind in AttackKind::ALL {
            let mut device = config.device();
            let mut twl = TossUpWearLeveling::new(&twl_config, device.endurance_map());
            let mut attack = Attack::new(kind, config.pages, config.seed);
            let report = run_attack(
                &mut twl,
                &mut device,
                &mut attack,
                &SimLimits::default(),
                &Calibration::attack_8gbps(),
            );
            product *= report.years.max(1e-6);
            worst = worst.min(report.years);
            extra += report.extra_write_ratio;
        }
        rows.push(vec![
            name.to_owned(),
            format!("{:.2}", product.powf(0.25)),
            format!("{:.2}", worst),
            format!("{:.3}", extra / 4.0),
        ]);
    }
    print_table(&headers, &rows);

    // BWL band-repair ablation: the repair pass is our addition on top
    // of the DATE'12 design (DESIGN.md §4.5); it roughly doubles benign
    // lifetime and does not rescue BWL from the inconsistent attack.
    println!("\nBWL band-repair ablation:");
    let bench = ParsecBenchmark::Canneal;
    let headers = ["BWL variant", "benign frac (canneal)", "inconsistent (yr)"];
    let mut rows = Vec::new();
    for (name, bwl_config) in [
        (
            "with band repair (default)",
            BwlConfig::for_pages(config.pages),
        ),
        ("naive (DATE'12 flow only)", BwlConfig::naive(config.pages)),
    ] {
        let mut device = PcmDevice::new(&config.pcm_config());
        let mut bwl = BloomFilterWl::new(&bwl_config, config.pages);
        let mut workload = bench.workload(config.pages, config.seed);
        let benign = run_workload(
            &mut bwl,
            &mut device,
            &mut workload,
            bench.name(),
            &SimLimits::default(),
            &Calibration::for_bandwidth_mbps(bench.write_bandwidth_mbps()),
        );
        let mut device = PcmDevice::new(&config.pcm_config());
        let mut bwl = BloomFilterWl::new(&bwl_config, config.pages);
        let mut attack = Attack::new(AttackKind::Inconsistent, config.pages, config.seed);
        let attacked = run_attack(
            &mut bwl,
            &mut device,
            &mut attack,
            &SimLimits::default(),
            &Calibration::attack_8gbps(),
        );
        rows.push(vec![
            name.to_owned(),
            format!("{:.3}", benign.capacity_fraction),
            format!("{:.2}", attacked.years),
        ]);
    }
    print_table(&headers, &rows);
    twl_bench::finish_telemetry();
}

fn build(f: impl FnOnce(&mut TwlConfigBuilder)) -> TwlConfig {
    let mut builder = TwlConfig::builder();
    f(&mut builder);
    builder.build().expect("ablation configs are valid")
}
