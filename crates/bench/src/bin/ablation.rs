//! Ablations of TWL's design choices (DESIGN.md §5), beyond what the
//! paper reports:
//!
//! * pairing strategy: strong-weak vs adjacent vs random;
//! * toss-up on factory (initial) vs remaining (dynamic) endurance;
//! * optimized 2-write vs naive 3-write swap-then-write;
//! * inter-pair swap interval.
//!
//! Each variant is one [`SchemeSpec`] — the whole study is a single
//! spec × attack matrix submitted to the shared sweep runner (pooled
//! workers, batched fast path), and the same labels can be submitted
//! to `twl-serviced` via `twl-ctl submit --schemes ...`. The table
//! reports the geometric-mean lifetime and the extra-write ratio. A
//! second table ablates BWL's band-repair pass (benign lifetime vs
//! attack robustness) the same way.
//!
//! Run: `cargo run --release -p twl-bench --bin ablation [-- --pages N ...]`

use twl_attacks::AttackKind;
use twl_bench::{print_table, ExperimentConfig};
use twl_lifetime::{attack_matrix, workload_matrix, SchemeSpec, SimLimits};
use twl_workloads::ParsecBenchmark;

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("ablation", &config);
    println!("TWL design-choice ablations (Gmean lifetime over the four attacks)");
    println!(
        "device: {} pages, mean endurance {}, seed {}\n",
        config.pages, config.mean_endurance, config.seed
    );

    let variants: Vec<(&str, SchemeSpec)> = vec![
        ("baseline (swp, initial E, 2-write swap)", spec("TWL_swp")),
        ("adjacent pairing", spec("TWL_ap")),
        ("random pairing", spec("TWL_swp[pair=rnd:7]")),
        ("dynamic (remaining) endurance", spec("TWL_swp[dyn=1]")),
        ("naive 3-write swap", spec("TWL_swp[swap=3]")),
        ("inter-pair interval 32", spec("TWL_swp[ip=32]")),
        ("inter-pair interval 512", spec("TWL_swp[ip=512]")),
        ("no inter-pair swap", spec("TWL_swp[ip=off]")),
    ];

    let specs: Vec<SchemeSpec> = variants.iter().map(|(_, s)| *s).collect();
    let reports = attack_matrix(
        &config.pcm_config(),
        &specs,
        &AttackKind::ALL,
        &SimLimits::default(),
    );

    let headers = ["variant", "Gmean (yr)", "worst (yr)", "extra writes"];
    let per_variant = AttackKind::ALL.len();
    let rows: Vec<Vec<String>> = variants
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            let chunk = &reports[i * per_variant..(i + 1) * per_variant];
            let product: f64 = chunk.iter().map(|r| r.years.max(1e-6)).product();
            let worst = chunk.iter().map(|r| r.years).fold(f64::INFINITY, f64::min);
            let extra: f64 = chunk.iter().map(|r| r.extra_write_ratio).sum();
            vec![
                (*name).to_owned(),
                format!("{:.2}", product.powf(1.0 / per_variant as f64)),
                format!("{:.2}", worst),
                format!("{:.3}", extra / per_variant as f64),
            ]
        })
        .collect();
    print_table(&headers, &rows);

    // BWL band-repair ablation: the repair pass is our addition on top
    // of the DATE'12 design (DESIGN.md §4.5); it roughly doubles benign
    // lifetime and does not rescue BWL from the inconsistent attack.
    println!("\nBWL band-repair ablation:");
    let bench = ParsecBenchmark::Canneal;
    let bwl_variants: [(&str, SchemeSpec); 2] = [
        ("with band repair (default)", spec("BWL")),
        ("naive (DATE'12 flow only)", spec("BWL[repair=0]")),
    ];
    let bwl_specs: Vec<SchemeSpec> = bwl_variants.iter().map(|(_, s)| *s).collect();
    let benign = workload_matrix(
        &config.pcm_config(),
        &bwl_specs,
        &[bench],
        &SimLimits::default(),
    );
    let attacked = attack_matrix(
        &config.pcm_config(),
        &bwl_specs,
        &[AttackKind::Inconsistent],
        &SimLimits::default(),
    );
    let headers = ["BWL variant", "benign frac (canneal)", "inconsistent (yr)"];
    let rows: Vec<Vec<String>> = bwl_variants
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            vec![
                (*name).to_owned(),
                format!("{:.3}", benign[i].capacity_fraction),
                format!("{:.2}", attacked[i].years),
            ]
        })
        .collect();
    print_table(&headers, &rows);
    twl_bench::finish_telemetry();
}

fn spec(label: &str) -> SchemeSpec {
    label.parse().expect("ablation spec labels are valid")
}
