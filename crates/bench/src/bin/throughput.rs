//! Throughput harness for the event-skipping batched fast path.
//!
//! Runs every scheme the factory can build under the repeat attack (the
//! fully batchable stream) and the random attack (runs of one write, so
//! the batched loop degenerates to oracle granularity) twice — through
//! the per-write reference loop and through the batched driver —
//! asserts the two runs are bit-identical, and reports simulated writes
//! per second for both, writing the results as JSON.
//!
//! Run: `cargo run --release -p twl-bench --bin throughput`
//!
//! Flags (all optional):
//!
//! * `--pages N` / `--endurance N` / `--seed N` — device geometry
//!   (defaults match `PcmConfig::default()`: 8192 / 100 000 / 0).
//! * `--budget N` — logical writes per timed run (default 20 000 000).
//! * `--iters N` — timing repetitions per mode; best-of wins (default 3).
//! * `--out PATH` — where to write the JSON (default
//!   `BENCH_throughput.json`).
//! * `--baseline PATH` — committed baseline to gate against (default
//!   `BENCH_throughput.json`; silently skipped when absent).
//! * `--smoke` — small geometry and budget for CI smoke runs.
//!
//! Exits non-zero if any scheme's batched throughput falls meaningfully
//! below its unbatched throughput, or if any (scheme, attack) speedup
//! lands more than 10% below the committed baseline measured on the
//! same geometry — the regression gates CI relies on.

use std::time::Instant;
use twl_attacks::{Attack, AttackKind};
use twl_lifetime::{
    build_scheme, run_attack, run_attack_unbatched, Calibration, LifetimeReport, SchemeKind,
    SimLimits,
};
use twl_pcm::{PcmConfig, PcmDevice};
use twl_telemetry::json::{self, Json};

/// Every scheme the factory can build (the default 8192-page geometry
/// is a power of two, so Security Refresh is included).
const SCHEMES: [SchemeKind; 7] = SchemeKind::ALL;

/// The attacks timed per scheme: repeat exercises the long-run batched
/// fast path; random declares runs of one write, so it measures the
/// per-event cost floor (SoA tables, bulk RNG) without run batching.
const ATTACKS: [AttackKind; 2] = [AttackKind::Repeat, AttackKind::Random];

struct BenchArgs {
    pages: u64,
    endurance: u64,
    seed: u64,
    budget: u64,
    iters: u32,
    out: String,
    baseline: String,
}

/// Parses the harness's own flags (`ExperimentConfig::from_args` cannot
/// host them: it panics on flags it does not know).
fn parse_args<I, S>(args: I) -> BenchArgs
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut parsed = BenchArgs {
        pages: 8192,
        endurance: 100_000,
        seed: 0,
        budget: 20_000_000,
        iters: 3,
        out: "BENCH_throughput.json".to_owned(),
        baseline: "BENCH_throughput.json".to_owned(),
    };
    let mut explicit_budget = false;
    let mut smoke = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut grab = |name: &str| -> String {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .as_ref()
                .to_owned()
        };
        let int = |name: &str, v: String| -> u64 {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} needs an integer value"))
        };
        match arg.as_ref() {
            "--pages" => parsed.pages = int("--pages", grab("--pages")),
            "--endurance" => parsed.endurance = int("--endurance", grab("--endurance")),
            "--seed" => parsed.seed = int("--seed", grab("--seed")),
            "--budget" => {
                parsed.budget = int("--budget", grab("--budget"));
                explicit_budget = true;
            }
            "--iters" => parsed.iters = int("--iters", grab("--iters")).max(1) as u32,
            "--out" => parsed.out = grab("--out"),
            "--baseline" => parsed.baseline = grab("--baseline"),
            "--smoke" => smoke = true,
            other => panic!("unknown flag {other}; see the throughput bin docs"),
        }
    }
    if smoke {
        parsed.pages = parsed.pages.min(256);
        parsed.endurance = parsed.endurance.min(2_000);
        if !explicit_budget {
            parsed.budget = 200_000;
        }
    }
    parsed
}

fn pcm_config(args: &BenchArgs) -> PcmConfig {
    PcmConfig::builder()
        .pages(args.pages)
        .mean_endurance(args.endurance)
        .seed(args.seed)
        .build()
        .expect("valid device geometry")
}

/// One full run: fresh device, scheme and attack every time, so timing
/// repetitions are independent and deterministic.
fn run_once(
    args: &BenchArgs,
    kind: SchemeKind,
    attack_kind: AttackKind,
    batched: bool,
) -> (LifetimeReport, Vec<u64>, f64) {
    let mut device = PcmDevice::new(&pcm_config(args));
    let mut scheme = build_scheme(kind, &device)
        .unwrap_or_else(|e| panic!("cannot build {kind} for this device: {e}"));
    let mut attack = Attack::new(attack_kind, scheme.page_count(), args.seed);
    let limits = SimLimits {
        max_logical_writes: args.budget,
    };
    let calibration = Calibration::attack_8gbps();
    let start = Instant::now();
    let report = if batched {
        run_attack(
            scheme.as_mut(),
            &mut device,
            &mut attack,
            &limits,
            &calibration,
        )
    } else {
        run_attack_unbatched(
            scheme.as_mut(),
            &mut device,
            &mut attack,
            &limits,
            &calibration,
        )
    };
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (report, device.wear_counters().to_vec(), secs)
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    println!(
        "throughput: repeat + random attacks, {} pages, mean endurance {}, seed {}, budget {}, \
         best of {}",
        args.pages, args.endurance, args.seed, args.budget, args.iters
    );

    let headers = [
        "scheme",
        "attack",
        "writes",
        "unbatched w/s",
        "batched w/s",
        "speedup",
    ];
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    let mut measured = Vec::new();
    let mut min_speedup = f64::INFINITY;
    for kind in SCHEMES {
        for attack_kind in ATTACKS {
            let (mut unbatched_report, unbatched_wear, mut unbatched_secs) =
                run_once(&args, kind, attack_kind, false);
            let (batched_report, batched_wear, mut batched_secs) =
                run_once(&args, kind, attack_kind, true);
            assert_eq!(
                batched_report, unbatched_report,
                "{kind}/{attack_kind}: batched run diverged from the per-write reference"
            );
            assert_eq!(
                batched_wear, unbatched_wear,
                "{kind}/{attack_kind}: batched wear map diverged from the per-write reference"
            );
            for _ in 1..args.iters {
                let (r, _, secs) = run_once(&args, kind, attack_kind, false);
                unbatched_report = r;
                unbatched_secs = unbatched_secs.min(secs);
                let (_, _, secs) = run_once(&args, kind, attack_kind, true);
                batched_secs = batched_secs.min(secs);
            }
            let writes = unbatched_report.logical_writes;
            let unbatched_wps = writes as f64 / unbatched_secs;
            let batched_wps = writes as f64 / batched_secs;
            let speedup = batched_wps / unbatched_wps;
            // Only repeat declares multi-write runs; the other attacks
            // run the batched loop at per-write granularity, so their
            // speedup is noise around 1.0 and must not trip the gate.
            if attack_kind == AttackKind::Repeat {
                min_speedup = min_speedup.min(speedup);
            }
            let attack = attack_kind.to_string();
            rows.push(vec![
                kind.label().to_owned(),
                attack.clone(),
                writes.to_string(),
                format!("{unbatched_wps:.0}"),
                format!("{batched_wps:.0}"),
                format!("{speedup:.2}x"),
            ]);
            // `attack` stays for old readers of BENCH_throughput.json;
            // `workload` is the canonical WorkloadSpec label new
            // tooling keys on (identical for bare attacks, but carries
            // params for future parameterized rows).
            let workload = twl_workloads::WorkloadSpec::from(attack_kind)
                .canonical()
                .label();
            runs.push(Json::obj([
                ("scheme", json::str(kind.label())),
                ("attack", json::str(&attack)),
                ("workload", json::str(&workload)),
                ("logical_writes", json::int(writes)),
                ("unbatched_secs", json::num(unbatched_secs)),
                ("batched_secs", json::num(batched_secs)),
                ("unbatched_writes_per_sec", json::num(unbatched_wps)),
                ("batched_writes_per_sec", json::num(batched_wps)),
                ("speedup", json::num(speedup)),
                ("identical", Json::Bool(true)),
            ]));
            measured.push(Measured {
                scheme: kind.label().to_owned(),
                attack,
                batched_wps,
                speedup,
                batched_secs,
            });
        }
    }
    twl_bench::print_table(&headers, &rows);

    let regressions = gate_against_baseline(&args, &measured);

    let (span_guard, span_overhead) = measure_span_overhead(&args);

    let doc = Json::obj([
        ("bench", json::str("throughput")),
        (
            "config",
            Json::obj([
                ("pages", json::int(args.pages)),
                ("mean_endurance", json::int(args.endurance)),
                ("seed", json::int(args.seed)),
                ("budget", json::int(args.budget)),
                ("iters", json::int(u64::from(args.iters))),
            ]),
        ),
        ("runs", Json::Arr(runs)),
        ("min_speedup", json::num(min_speedup)),
        ("span_overhead", span_guard),
    ]);
    std::fs::write(&args.out, doc.to_compact() + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    println!("wrote {}", args.out);

    // Schemes without a write_batch fast path (SR, WRL, the hybrids)
    // run the batched loop at per-write granularity, so their honest
    // speedup is ~1.0x and timing noise swings it a few percent either
    // way; the gate tolerates that while still catching any scheme
    // where batching is a real pessimization.
    if min_speedup < 0.9 {
        eprintln!("FAIL: batched throughput regressed below unbatched ({min_speedup:.2}x)");
        std::process::exit(1);
    }
    if span_overhead > SPAN_OVERHEAD_BUDGET {
        eprintln!(
            "FAIL: span overhead {:.2}% exceeds the {:.0}% budget",
            span_overhead * 100.0,
            SPAN_OVERHEAD_BUDGET * 100.0
        );
        std::process::exit(1);
    }
    if !regressions.is_empty() {
        for r in &regressions {
            eprintln!("FAIL: {r}");
        }
        std::process::exit(1);
    }
}

/// A scheme's batched-over-unbatched speedup may fall at most this
/// fraction below the committed baseline before the gate fails.
const BASELINE_TOLERANCE: f64 = 0.10;

/// Runs shorter than this cannot be gated: a batched micro-run (a
/// scheme that wears out within ~100K writes finishes in tens of
/// microseconds) carries timer jitter of the same order as the gate
/// tolerance, however many repetitions the minimum is taken over.
const MIN_GATE_SECS: f64 = 1e-3;

/// One timed (scheme, attack) result, as the baseline gate consumes it.
struct Measured {
    scheme: String,
    attack: String,
    batched_wps: f64,
    speedup: f64,
    batched_secs: f64,
}

/// Compares each measured (scheme, attack) run against the committed
/// baseline JSON and returns the list of >10% regressions.
///
/// The gated quantity is the *speedup* (batched over unbatched
/// writes/s), not absolute throughput: both halves of the ratio are
/// timed in the same invocation, so machine-speed differences and the
/// noise bursts of shared CI runners cancel, while a regression in the
/// batched fast path — the thing this bench protects — moves the ratio
/// directly. Absolute batched throughput >10% below the baseline is
/// reported as a warning, since across machines it measures the host
/// as much as the code. The baseline's ratios only transfer when taken
/// on the same device geometry — scheme event cadence depends on pages
/// and endurance, but not (beyond noise) on the write budget, which is
/// what regression-gate CI trims — so on a geometry mismatch the gate
/// reports itself skipped instead of comparing incomparable numbers.
/// Rows present on only one side are ignored: new schemes/attacks get
/// a baseline the first time they are committed. Rows whose batched
/// run (on either side) is shorter than [`MIN_GATE_SECS`] are noted
/// and skipped — their bit-identity is still asserted upstream, but
/// their timings are timer jitter, not measurements.
fn gate_against_baseline(args: &BenchArgs, measured: &[Measured]) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(&args.baseline) else {
        println!("baseline gate: no {} — skipped", args.baseline);
        return Vec::new();
    };
    let doc = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => return vec![format!("baseline {} is not valid JSON: {e}", args.baseline)],
    };
    let config = doc.get("config");
    let base_of = |key: &str| config.and_then(|c| c.get(key)).and_then(Json::as_u64);
    if base_of("pages") != Some(args.pages) || base_of("mean_endurance") != Some(args.endurance) {
        println!(
            "baseline gate: {} was measured on a different geometry — skipped",
            args.baseline
        );
        return Vec::new();
    }
    let mut regressions = Vec::new();
    let mut compared = 0;
    for run in doc.get("runs").and_then(Json::as_arr).unwrap_or(&[]) {
        let scheme = run.get("scheme").and_then(Json::as_str).unwrap_or("");
        let attack = run.get("attack").and_then(Json::as_str).unwrap_or("");
        let Some(base_speedup) = run.get("speedup").and_then(Json::as_f64) else {
            continue;
        };
        let Some(new) = measured
            .iter()
            .find(|m| m.scheme == scheme && m.attack == attack)
        else {
            continue;
        };
        let base_secs = run
            .get("batched_secs")
            .and_then(Json::as_f64)
            .unwrap_or(f64::INFINITY);
        if new.batched_secs < MIN_GATE_SECS || base_secs < MIN_GATE_SECS {
            println!(
                "baseline gate: {scheme}/{attack} skipped — batched run of {:.0}µs is below \
                 the {:.0}ms timing floor",
                new.batched_secs.min(base_secs) * 1e6,
                MIN_GATE_SECS * 1e3
            );
            continue;
        }
        compared += 1;
        if new.speedup < base_speedup * (1.0 - BASELINE_TOLERANCE) {
            regressions.push(format!(
                "{scheme}/{attack}: speedup {:.2}x is {:.1}% below the committed \
                 baseline {base_speedup:.2}x (tolerance {:.0}%)",
                new.speedup,
                (1.0 - new.speedup / base_speedup) * 100.0,
                BASELINE_TOLERANCE * 100.0
            ));
        }
        if let Some(base_wps) = run.get("batched_writes_per_sec").and_then(Json::as_f64) {
            if new.batched_wps < base_wps * (1.0 - BASELINE_TOLERANCE) {
                println!(
                    "baseline gate: note — {scheme}/{attack} batched {:.0} w/s is \
                     {:.1}% below the committed {base_wps:.0} w/s (informational; absolute \
                     throughput tracks the host)",
                    new.batched_wps,
                    (1.0 - new.batched_wps / base_wps) * 100.0
                );
            }
        }
    }
    println!(
        "baseline gate: compared {compared} runs against {}, {} regression(s)",
        args.baseline,
        regressions.len()
    );
    regressions
}

/// The fraction of batched throughput spans are allowed to cost.
const SPAN_OVERHEAD_BUDGET: f64 = 0.02;

/// Times the batched path with a sink installed and spans toggled off
/// vs on — the *only* difference between the two runs is the span
/// switch, so the ratio isolates pure span cost (one span per drive
/// call; the sink and its wear samplers are active in both). Also
/// asserts the reports are bit-identical, the oracle that spans stay
/// off the simulation path. Returns the JSON summary and the measured
/// overhead fraction.
fn measure_span_overhead(args: &BenchArgs) -> (Json, f64) {
    // The guard pins the full default geometry regardless of --smoke:
    // smoke-scale devices wear out after ~200K writes, so the run
    // length must come from the budget, not the flags. Runs are kept
    // SHORT on purpose (~1M writes, a few ms): on a virtualized host,
    // steal and frequency drift arrive in bursts lasting whole runs,
    // so with many short runs enough of them land in quiet windows for
    // the per-mode minima to converge — long runs (tens of ms) were
    // measured absorbing a burst every time, swinging the estimate by
    // ±5-40%.
    let guard_args = BenchArgs {
        pages: 8192,
        endurance: 100_000,
        seed: args.seed,
        budget: 1_000_000,
        iters: args.iters.max(60),
        out: String::new(),
        baseline: String::new(),
    };
    let kind = SchemeKind::TwlSwp;
    let sink = twl_telemetry::MemorySink::new();
    let records = sink.handle();
    twl_telemetry::install_sink(sink);

    // Runs interleave as off/on pairs, order alternating each pair to
    // cancel any systematic first-run/second-run bias; each pair also
    // yields an on/off ratio whose halves are adjacent in time, so a
    // burst covering both cancels in the ratio.
    let timed = |spans: bool| {
        // Drop the previous run's records but keep the Vec's capacity:
        // letting the buffer grow across runs puts its doubling
        // reallocations (multi-MB memcpys) inside random timed
        // regions.
        records.lock().expect("sink poisoned").clear();
        twl_telemetry::set_spans_enabled(spans);
        run_once(&guard_args, kind, AttackKind::Repeat, true)
    };
    let mut ratios = Vec::new();
    let (mut off_secs, mut on_secs) = (f64::INFINITY, f64::INFINITY);
    let mut writes = 0;
    for i in 0..guard_args.iters {
        let (off, on) = if i % 2 == 0 {
            let off = timed(false);
            (off, timed(true))
        } else {
            let on = timed(true);
            (timed(false), on)
        };
        assert_eq!(
            on.0, off.0,
            "{kind}: enabling spans changed the simulation result"
        );
        ratios.push(on.2 / off.2);
        off_secs = off_secs.min(off.2);
        on_secs = on_secs.min(on.2);
        writes = off.0.logical_writes;
    }
    twl_telemetry::clear_sinks();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));

    #[allow(clippy::cast_precision_loss)]
    let (off_wps, on_wps) = (writes as f64 / off_secs, writes as f64 / on_secs);
    // Two estimators, gate on the smaller: the median pair ratio and
    // the ratio of per-mode minima. A real span cost shifts both up by
    // the same factor; environment noise (VM steal, frequency drift)
    // inflates each one independently and rarely both, so the min
    // keeps the gate's false-positive rate low without blinding it to
    // genuine regressions an order of magnitude over the budget.
    let median = ratios[ratios.len() / 2] - 1.0;
    let overhead = median.min(on_secs / off_secs - 1.0);
    println!(
        "span overhead ({kind}, batched, sink installed): spans off {off_wps:.0} w/s, \
         spans on {on_wps:.0} w/s, overhead {:+.2}% (budget {:.0}%)",
        overhead * 100.0,
        SPAN_OVERHEAD_BUDGET * 100.0
    );
    let doc = Json::obj([
        ("scheme", json::str(kind.label())),
        ("logical_writes", json::int(writes)),
        ("spans_off_secs", json::num(off_secs)),
        ("spans_on_secs", json::num(on_secs)),
        ("spans_off_writes_per_sec", json::num(off_wps)),
        ("spans_on_writes_per_sec", json::num(on_wps)),
        ("overhead_fraction", json::num(overhead)),
        ("median_pair_overhead_fraction", json::num(median)),
        ("budget_fraction", json::num(SPAN_OVERHEAD_BUDGET)),
        ("identical", Json::Bool(true)),
    ]);
    (doc, overhead)
}
