//! Throughput harness for the event-skipping batched fast path.
//!
//! Runs the repeat attack (the fully batchable stream) against a set of
//! schemes twice — through the per-write reference loop and through the
//! batched driver — asserts the two runs are bit-identical, and reports
//! simulated writes per second for both, writing the results as JSON.
//!
//! Run: `cargo run --release -p twl-bench --bin throughput`
//!
//! Flags (all optional):
//!
//! * `--pages N` / `--endurance N` / `--seed N` — device geometry
//!   (defaults match `PcmConfig::default()`: 8192 / 100 000 / 0).
//! * `--budget N` — logical writes per timed run (default 20 000 000).
//! * `--iters N` — timing repetitions per mode; best-of wins (default 3).
//! * `--out PATH` — where to write the JSON (default
//!   `BENCH_throughput.json`).
//! * `--smoke` — small geometry and budget for CI smoke runs.
//!
//! Exits non-zero if any scheme's batched throughput falls below its
//! unbatched throughput — the regression gate CI relies on.

use std::time::Instant;
use twl_attacks::{Attack, AttackKind};
use twl_lifetime::{
    build_scheme, run_attack, run_attack_unbatched, Calibration, LifetimeReport, SchemeKind,
    SimLimits,
};
use twl_pcm::{PcmConfig, PcmDevice};
use twl_telemetry::json::{self, Json};

/// The schemes timed by the harness: the pass-through baseline, the two
/// interval-driven baselines, and the paper's scheme.
const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Nowl,
    SchemeKind::StartGap,
    SchemeKind::Bwl,
    SchemeKind::TwlSwp,
];

struct BenchArgs {
    pages: u64,
    endurance: u64,
    seed: u64,
    budget: u64,
    iters: u32,
    out: String,
}

/// Parses the harness's own flags (`ExperimentConfig::from_args` cannot
/// host them: it panics on flags it does not know).
fn parse_args<I, S>(args: I) -> BenchArgs
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut parsed = BenchArgs {
        pages: 8192,
        endurance: 100_000,
        seed: 0,
        budget: 20_000_000,
        iters: 3,
        out: "BENCH_throughput.json".to_owned(),
    };
    let mut explicit_budget = false;
    let mut smoke = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut grab = |name: &str| -> String {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .as_ref()
                .to_owned()
        };
        let int = |name: &str, v: String| -> u64 {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} needs an integer value"))
        };
        match arg.as_ref() {
            "--pages" => parsed.pages = int("--pages", grab("--pages")),
            "--endurance" => parsed.endurance = int("--endurance", grab("--endurance")),
            "--seed" => parsed.seed = int("--seed", grab("--seed")),
            "--budget" => {
                parsed.budget = int("--budget", grab("--budget"));
                explicit_budget = true;
            }
            "--iters" => parsed.iters = int("--iters", grab("--iters")).max(1) as u32,
            "--out" => parsed.out = grab("--out"),
            "--smoke" => smoke = true,
            other => panic!("unknown flag {other}; see the throughput bin docs"),
        }
    }
    if smoke {
        parsed.pages = parsed.pages.min(256);
        parsed.endurance = parsed.endurance.min(2_000);
        if !explicit_budget {
            parsed.budget = 200_000;
        }
    }
    parsed
}

fn pcm_config(args: &BenchArgs) -> PcmConfig {
    PcmConfig::builder()
        .pages(args.pages)
        .mean_endurance(args.endurance)
        .seed(args.seed)
        .build()
        .expect("valid device geometry")
}

/// One full run: fresh device, scheme and attack every time, so timing
/// repetitions are independent and deterministic.
fn run_once(args: &BenchArgs, kind: SchemeKind, batched: bool) -> (LifetimeReport, Vec<u64>, f64) {
    let mut device = PcmDevice::new(&pcm_config(args));
    let mut scheme = build_scheme(kind, &device)
        .unwrap_or_else(|e| panic!("cannot build {kind} for this device: {e}"));
    let mut attack = Attack::new(AttackKind::Repeat, scheme.page_count(), args.seed);
    let limits = SimLimits {
        max_logical_writes: args.budget,
    };
    let calibration = Calibration::attack_8gbps();
    let start = Instant::now();
    let report = if batched {
        run_attack(
            scheme.as_mut(),
            &mut device,
            &mut attack,
            &limits,
            &calibration,
        )
    } else {
        run_attack_unbatched(
            scheme.as_mut(),
            &mut device,
            &mut attack,
            &limits,
            &calibration,
        )
    };
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (report, device.wear_counters().to_vec(), secs)
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    println!(
        "throughput: repeat attack, {} pages, mean endurance {}, seed {}, budget {}, best of {}",
        args.pages, args.endurance, args.seed, args.budget, args.iters
    );

    let headers = [
        "scheme",
        "writes",
        "unbatched w/s",
        "batched w/s",
        "speedup",
    ];
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    let mut min_speedup = f64::INFINITY;
    for kind in SCHEMES {
        let (mut unbatched_report, unbatched_wear, mut unbatched_secs) =
            run_once(&args, kind, false);
        let (batched_report, batched_wear, mut batched_secs) = run_once(&args, kind, true);
        assert_eq!(
            batched_report, unbatched_report,
            "{kind}: batched run diverged from the per-write reference"
        );
        assert_eq!(
            batched_wear, unbatched_wear,
            "{kind}: batched wear map diverged from the per-write reference"
        );
        for _ in 1..args.iters {
            let (r, _, secs) = run_once(&args, kind, false);
            unbatched_report = r;
            unbatched_secs = unbatched_secs.min(secs);
            let (_, _, secs) = run_once(&args, kind, true);
            batched_secs = batched_secs.min(secs);
        }
        let writes = unbatched_report.logical_writes;
        let unbatched_wps = writes as f64 / unbatched_secs;
        let batched_wps = writes as f64 / batched_secs;
        let speedup = batched_wps / unbatched_wps;
        min_speedup = min_speedup.min(speedup);
        rows.push(vec![
            kind.label().to_owned(),
            writes.to_string(),
            format!("{unbatched_wps:.0}"),
            format!("{batched_wps:.0}"),
            format!("{speedup:.2}x"),
        ]);
        runs.push(Json::obj([
            ("scheme", json::str(kind.label())),
            ("attack", json::str("repeat")),
            ("logical_writes", json::int(writes)),
            ("unbatched_secs", json::num(unbatched_secs)),
            ("batched_secs", json::num(batched_secs)),
            ("unbatched_writes_per_sec", json::num(unbatched_wps)),
            ("batched_writes_per_sec", json::num(batched_wps)),
            ("speedup", json::num(speedup)),
            ("identical", Json::Bool(true)),
        ]));
    }
    twl_bench::print_table(&headers, &rows);

    let (span_guard, span_overhead) = measure_span_overhead(&args);

    let doc = Json::obj([
        ("bench", json::str("throughput")),
        (
            "config",
            Json::obj([
                ("pages", json::int(args.pages)),
                ("mean_endurance", json::int(args.endurance)),
                ("seed", json::int(args.seed)),
                ("budget", json::int(args.budget)),
                ("iters", json::int(u64::from(args.iters))),
            ]),
        ),
        ("runs", Json::Arr(runs)),
        ("min_speedup", json::num(min_speedup)),
        ("span_overhead", span_guard),
    ]);
    std::fs::write(&args.out, doc.to_compact() + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    println!("wrote {}", args.out);

    if min_speedup < 1.0 {
        eprintln!("FAIL: batched throughput regressed below unbatched ({min_speedup:.2}x)");
        std::process::exit(1);
    }
    if span_overhead > SPAN_OVERHEAD_BUDGET {
        eprintln!(
            "FAIL: span overhead {:.2}% exceeds the {:.0}% budget",
            span_overhead * 100.0,
            SPAN_OVERHEAD_BUDGET * 100.0
        );
        std::process::exit(1);
    }
}

/// The fraction of batched throughput spans are allowed to cost.
const SPAN_OVERHEAD_BUDGET: f64 = 0.02;

/// Times the batched path with a sink installed and spans toggled off
/// vs on — the *only* difference between the two runs is the span
/// switch, so the ratio isolates pure span cost (one span per drive
/// call; the sink and its wear samplers are active in both). Also
/// asserts the reports are bit-identical, the oracle that spans stay
/// off the simulation path. Returns the JSON summary and the measured
/// overhead fraction.
fn measure_span_overhead(args: &BenchArgs) -> (Json, f64) {
    // The guard pins the full default geometry regardless of --smoke:
    // smoke-scale devices wear out after ~200K writes, so the run
    // length must come from the budget, not the flags. Runs are kept
    // SHORT on purpose (~1M writes, a few ms): on a virtualized host,
    // steal and frequency drift arrive in bursts lasting whole runs,
    // so with many short runs enough of them land in quiet windows for
    // the per-mode minima to converge — long runs (tens of ms) were
    // measured absorbing a burst every time, swinging the estimate by
    // ±5-40%.
    let guard_args = BenchArgs {
        pages: 8192,
        endurance: 100_000,
        seed: args.seed,
        budget: 1_000_000,
        iters: args.iters.max(60),
        out: String::new(),
    };
    let kind = SchemeKind::TwlSwp;
    let sink = twl_telemetry::MemorySink::new();
    let records = sink.handle();
    twl_telemetry::install_sink(sink);

    // Runs interleave as off/on pairs, order alternating each pair to
    // cancel any systematic first-run/second-run bias; each pair also
    // yields an on/off ratio whose halves are adjacent in time, so a
    // burst covering both cancels in the ratio.
    let timed = |spans: bool| {
        // Drop the previous run's records but keep the Vec's capacity:
        // letting the buffer grow across runs puts its doubling
        // reallocations (multi-MB memcpys) inside random timed
        // regions.
        records.lock().expect("sink poisoned").clear();
        twl_telemetry::set_spans_enabled(spans);
        run_once(&guard_args, kind, true)
    };
    let mut ratios = Vec::new();
    let (mut off_secs, mut on_secs) = (f64::INFINITY, f64::INFINITY);
    let mut writes = 0;
    for i in 0..guard_args.iters {
        let (off, on) = if i % 2 == 0 {
            let off = timed(false);
            (off, timed(true))
        } else {
            let on = timed(true);
            (timed(false), on)
        };
        assert_eq!(
            on.0, off.0,
            "{kind}: enabling spans changed the simulation result"
        );
        ratios.push(on.2 / off.2);
        off_secs = off_secs.min(off.2);
        on_secs = on_secs.min(on.2);
        writes = off.0.logical_writes;
    }
    twl_telemetry::clear_sinks();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));

    #[allow(clippy::cast_precision_loss)]
    let (off_wps, on_wps) = (writes as f64 / off_secs, writes as f64 / on_secs);
    // Two estimators, gate on the smaller: the median pair ratio and
    // the ratio of per-mode minima. A real span cost shifts both up by
    // the same factor; environment noise (VM steal, frequency drift)
    // inflates each one independently and rarely both, so the min
    // keeps the gate's false-positive rate low without blinding it to
    // genuine regressions an order of magnitude over the budget.
    let median = ratios[ratios.len() / 2] - 1.0;
    let overhead = median.min(on_secs / off_secs - 1.0);
    println!(
        "span overhead ({kind}, batched, sink installed): spans off {off_wps:.0} w/s, \
         spans on {on_wps:.0} w/s, overhead {:+.2}% (budget {:.0}%)",
        overhead * 100.0,
        SPAN_OVERHEAD_BUDGET * 100.0
    );
    let doc = Json::obj([
        ("scheme", json::str(kind.label())),
        ("logical_writes", json::int(writes)),
        ("spans_off_secs", json::num(off_secs)),
        ("spans_on_secs", json::num(on_secs)),
        ("spans_off_writes_per_sec", json::num(off_wps)),
        ("spans_on_writes_per_sec", json::num(on_wps)),
        ("overhead_fraction", json::num(overhead)),
        ("median_pair_overhead_fraction", json::num(median)),
        ("budget_fraction", json::num(SPAN_OVERHEAD_BUDGET)),
        ("identical", Json::Bool(true)),
    ]);
    (doc, overhead)
}
