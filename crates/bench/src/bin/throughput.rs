//! Throughput harness for the event-skipping batched fast path.
//!
//! Runs the repeat attack (the fully batchable stream) against a set of
//! schemes twice — through the per-write reference loop and through the
//! batched driver — asserts the two runs are bit-identical, and reports
//! simulated writes per second for both, writing the results as JSON.
//!
//! Run: `cargo run --release -p twl-bench --bin throughput`
//!
//! Flags (all optional):
//!
//! * `--pages N` / `--endurance N` / `--seed N` — device geometry
//!   (defaults match `PcmConfig::default()`: 8192 / 100 000 / 0).
//! * `--budget N` — logical writes per timed run (default 20 000 000).
//! * `--iters N` — timing repetitions per mode; best-of wins (default 3).
//! * `--out PATH` — where to write the JSON (default
//!   `BENCH_throughput.json`).
//! * `--smoke` — small geometry and budget for CI smoke runs.
//!
//! Exits non-zero if any scheme's batched throughput falls below its
//! unbatched throughput — the regression gate CI relies on.

use std::time::Instant;
use twl_attacks::{Attack, AttackKind};
use twl_lifetime::{
    build_scheme, run_attack, run_attack_unbatched, Calibration, LifetimeReport, SchemeKind,
    SimLimits,
};
use twl_pcm::{PcmConfig, PcmDevice};
use twl_telemetry::json::{self, Json};

/// The schemes timed by the harness: the pass-through baseline, the two
/// interval-driven baselines, and the paper's scheme.
const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Nowl,
    SchemeKind::StartGap,
    SchemeKind::Bwl,
    SchemeKind::TwlSwp,
];

struct BenchArgs {
    pages: u64,
    endurance: u64,
    seed: u64,
    budget: u64,
    iters: u32,
    out: String,
}

/// Parses the harness's own flags (`ExperimentConfig::from_args` cannot
/// host them: it panics on flags it does not know).
fn parse_args<I, S>(args: I) -> BenchArgs
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut parsed = BenchArgs {
        pages: 8192,
        endurance: 100_000,
        seed: 0,
        budget: 20_000_000,
        iters: 3,
        out: "BENCH_throughput.json".to_owned(),
    };
    let mut explicit_budget = false;
    let mut smoke = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut grab = |name: &str| -> String {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .as_ref()
                .to_owned()
        };
        let int = |name: &str, v: String| -> u64 {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} needs an integer value"))
        };
        match arg.as_ref() {
            "--pages" => parsed.pages = int("--pages", grab("--pages")),
            "--endurance" => parsed.endurance = int("--endurance", grab("--endurance")),
            "--seed" => parsed.seed = int("--seed", grab("--seed")),
            "--budget" => {
                parsed.budget = int("--budget", grab("--budget"));
                explicit_budget = true;
            }
            "--iters" => parsed.iters = int("--iters", grab("--iters")).max(1) as u32,
            "--out" => parsed.out = grab("--out"),
            "--smoke" => smoke = true,
            other => panic!("unknown flag {other}; see the throughput bin docs"),
        }
    }
    if smoke {
        parsed.pages = parsed.pages.min(256);
        parsed.endurance = parsed.endurance.min(2_000);
        if !explicit_budget {
            parsed.budget = 200_000;
        }
    }
    parsed
}

fn pcm_config(args: &BenchArgs) -> PcmConfig {
    PcmConfig::builder()
        .pages(args.pages)
        .mean_endurance(args.endurance)
        .seed(args.seed)
        .build()
        .expect("valid device geometry")
}

/// One full run: fresh device, scheme and attack every time, so timing
/// repetitions are independent and deterministic.
fn run_once(args: &BenchArgs, kind: SchemeKind, batched: bool) -> (LifetimeReport, Vec<u64>, f64) {
    let mut device = PcmDevice::new(&pcm_config(args));
    let mut scheme = build_scheme(kind, &device)
        .unwrap_or_else(|e| panic!("cannot build {kind} for this device: {e}"));
    let mut attack = Attack::new(AttackKind::Repeat, scheme.page_count(), args.seed);
    let limits = SimLimits {
        max_logical_writes: args.budget,
    };
    let calibration = Calibration::attack_8gbps();
    let start = Instant::now();
    let report = if batched {
        run_attack(
            scheme.as_mut(),
            &mut device,
            &mut attack,
            &limits,
            &calibration,
        )
    } else {
        run_attack_unbatched(
            scheme.as_mut(),
            &mut device,
            &mut attack,
            &limits,
            &calibration,
        )
    };
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (report, device.wear_counters().to_vec(), secs)
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    println!(
        "throughput: repeat attack, {} pages, mean endurance {}, seed {}, budget {}, best of {}",
        args.pages, args.endurance, args.seed, args.budget, args.iters
    );

    let headers = [
        "scheme",
        "writes",
        "unbatched w/s",
        "batched w/s",
        "speedup",
    ];
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    let mut min_speedup = f64::INFINITY;
    for kind in SCHEMES {
        let (mut unbatched_report, unbatched_wear, mut unbatched_secs) =
            run_once(&args, kind, false);
        let (batched_report, batched_wear, mut batched_secs) = run_once(&args, kind, true);
        assert_eq!(
            batched_report, unbatched_report,
            "{kind}: batched run diverged from the per-write reference"
        );
        assert_eq!(
            batched_wear, unbatched_wear,
            "{kind}: batched wear map diverged from the per-write reference"
        );
        for _ in 1..args.iters {
            let (r, _, secs) = run_once(&args, kind, false);
            unbatched_report = r;
            unbatched_secs = unbatched_secs.min(secs);
            let (_, _, secs) = run_once(&args, kind, true);
            batched_secs = batched_secs.min(secs);
        }
        let writes = unbatched_report.logical_writes;
        let unbatched_wps = writes as f64 / unbatched_secs;
        let batched_wps = writes as f64 / batched_secs;
        let speedup = batched_wps / unbatched_wps;
        min_speedup = min_speedup.min(speedup);
        rows.push(vec![
            kind.label().to_owned(),
            writes.to_string(),
            format!("{unbatched_wps:.0}"),
            format!("{batched_wps:.0}"),
            format!("{speedup:.2}x"),
        ]);
        runs.push(Json::obj([
            ("scheme", json::str(kind.label())),
            ("attack", json::str("repeat")),
            ("logical_writes", json::int(writes)),
            ("unbatched_secs", json::num(unbatched_secs)),
            ("batched_secs", json::num(batched_secs)),
            ("unbatched_writes_per_sec", json::num(unbatched_wps)),
            ("batched_writes_per_sec", json::num(batched_wps)),
            ("speedup", json::num(speedup)),
            ("identical", Json::Bool(true)),
        ]));
    }
    twl_bench::print_table(&headers, &rows);

    let doc = Json::obj([
        ("bench", json::str("throughput")),
        (
            "config",
            Json::obj([
                ("pages", json::int(args.pages)),
                ("mean_endurance", json::int(args.endurance)),
                ("seed", json::int(args.seed)),
                ("budget", json::int(args.budget)),
                ("iters", json::int(u64::from(args.iters))),
            ]),
        ),
        ("runs", Json::Arr(runs)),
        ("min_speedup", json::num(min_speedup)),
    ]);
    std::fs::write(&args.out, doc.to_compact() + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    println!("wrote {}", args.out);

    if min_speedup < 1.0 {
        eprintln!("FAIL: batched throughput regressed below unbatched ({min_speedup:.2}x)");
        std::process::exit(1);
    }
}
