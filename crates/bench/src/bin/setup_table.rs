//! Prints **Table 1**: the simulation setup, from the live configuration
//! defaults (so the table cannot drift from the code).
//!
//! Run: `cargo run -p twl-bench --bin setup_table`

use twl_bench::ExperimentConfig;
use twl_core::TwlConfig;
use twl_pcm::PcmConfig;

fn main() {
    twl_bench::init_telemetry("setup_table", &ExperimentConfig::default());
    let pcm = PcmConfig::nominal_dac17();
    let twl = TwlConfig::dac17();

    println!("Table 1: simulation setup (nominal configuration)\n");
    println!("PCM configuration");
    println!(
        "  {} GB PCM, {}-byte pages, {} bytes per line, {} banks",
        pcm.capacity_bytes() >> 30,
        pcm.page_size_bytes,
        pcm.line_size_bytes,
        pcm.banks
    );
    println!(
        "  read/set/reset latency: {}/{}/{} cycles",
        pcm.timing.read_latency, pcm.timing.set_latency, pcm.timing.reset_latency
    );
    println!(
        "  endurance: Gaussian, mean {:.0e}, sigma {:.0}% of mean, page-granularity",
        pcm.mean_endurance as f64,
        pcm.sigma_fraction * 100.0
    );
    println!("\nTWL configuration");
    println!(
        "  toss-up interval: {}   inter-pair swap interval: {}",
        twl.toss_up_interval, twl.inter_pair_swap_interval
    );
    println!(
        "  RNG latency: {} cycles   control logic: {} cycles   table: {} cycles",
        twl.rng_latency, twl.control_latency, twl.table_latency
    );
    println!(
        "  pairing: {:?}   optimized swap-then-write: {}",
        twl.pairing, twl.optimized_swap
    );
    twl_bench::finish_telemetry();
}
