//! Extension study: online attack detection (the paper's reference
//! \[11\], Qureshi+ HPCA 2011).
//!
//! Runs the Misra-Gries-based [`AttackMonitor`] beside the write stream
//! of each attack mode and of every PARSEC workload, reporting the
//! alarm rate (detection rate for attacks, false-positive rate for
//! benign traffic) and the detection latency in writes.
//!
//! Run: `cargo run --release -p twl-bench --bin extension_detector [-- --pages N ...]`

use twl_attacks::{Attack, AttackKind, AttackStream};
use twl_bench::{print_table, ExperimentConfig};
use twl_wl_core::AttackMonitor;
use twl_workloads::ParsecBenchmark;

const STREAM_WRITES: u64 = 400_000;

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("extension_detector", &config);
    println!("Online attack detection (Misra-Gries monitor, 32 counters, 16k-write windows)");
    println!("device: {} pages, seed {}\n", config.pages, config.seed);

    let headers = ["stream", "alarm rate", "first alarm (writes)"];
    let mut rows = Vec::new();

    for kind in AttackKind::ALL {
        let mut monitor = AttackMonitor::for_pages();
        let mut attack = Attack::new(kind, config.pages, config.seed);
        let mut first_alarm = None;
        for i in 0..STREAM_WRITES {
            let la = attack.next_write(None);
            if monitor.observe_write(la, None) && first_alarm.is_none() {
                first_alarm = Some(i + 1);
            }
        }
        rows.push(vec![
            format!("attack: {kind}"),
            format!("{:.2}", monitor.alarm_rate()),
            first_alarm.map_or("never".to_owned(), |w| w.to_string()),
        ]);
    }

    for bench in ParsecBenchmark::ALL {
        let mut monitor = AttackMonitor::for_pages();
        let mut workload = bench.workload(config.pages, config.seed);
        let mut first_alarm = None;
        for i in 0..STREAM_WRITES {
            let la = workload.next_write_la();
            if monitor.observe_write(la, None) && first_alarm.is_none() {
                first_alarm = Some(i + 1);
            }
        }
        rows.push(vec![
            format!("benign: {bench}"),
            format!("{:.2}", monitor.alarm_rate()),
            first_alarm.map_or("never".to_owned(), |w| w.to_string()),
        ]);
    }

    print_table(&headers, &rows);
    println!(
        "\n(scan and random attacks are indistinguishable from uniform traffic by design —\n they do not concentrate writes, and uniform traffic needs no PV-unaware defense)"
    );
    twl_bench::finish_telemetry();
}
