//! **Graceful degradation past first wear-out**: lifetime with cell
//! faults, ECP-style correction, and page retirement to a spare pool,
//! for TWL against the baselines.
//!
//! Where `fig6_attacks` stops at the first worn-out page (the paper's
//! fail-stop methodology), this experiment keeps going: per-page cell
//! groups wear out around the page's endurance draw, an ECP-6 corrector
//! absorbs stuck-at faults until its budget is spent, and uncorrectable
//! pages retire to a 5 % spare pool until it runs dry. The output is a
//! degradation curve per scheme — capacity remaining vs device writes —
//! plus the milestone writes (first fault, first retirement, 1 % frame
//! loss, spare exhaustion).
//!
//! Wear leveling changes the *shape* of the curve: NOWL burns through
//! one spare at a time under a repeat attack and dies early, while TWL
//! spreads the damage so faults arrive late and retirements come in a
//! compressed burst near the device's true capacity.
//!
//! Run: `cargo run --release -p twl-bench --bin fault_lifetime [-- --pages N ...]`

use twl_attacks::AttackKind;
use twl_bench::{print_table, ExperimentConfig};
use twl_faults::FaultConfig;
use twl_lifetime::{degradation_matrix, DegradationEnd, DegradationReport, SchemeKind, SimLimits};

/// Schemes compared: TWL plus the strongest baselines and NOWL.
const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::TwlSwp,
    SchemeKind::Bwl,
    SchemeKind::Sr,
    SchemeKind::Nowl,
];

fn fmt_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_owned(), |w| w.to_string())
}

/// At most `max` evenly spaced curve points, always keeping the last.
fn downsample(report: &DegradationReport, max: usize) -> Vec<String> {
    let total = report.data_pages + report.spare_pages;
    let n = report.curve.len();
    let stride = n.div_ceil(max).max(1);
    report
        .curve
        .iter()
        .enumerate()
        .filter(|(i, _)| i % stride == 0 || *i == n - 1)
        .map(|(_, p)| {
            let capacity = 100.0 * (1.0 - p.retired_pages as f64 / total as f64);
            format!("{capacity:.1}%@{}", p.device_writes)
        })
        .collect()
}

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("fault_lifetime", &config);
    let fault_cfg = FaultConfig {
        seed: config.seed ^ 0xFA17,
        ..FaultConfig::default()
    };
    println!("Graceful degradation under the repeat attack");
    println!(
        "device: {} data pages, mean endurance {}, seed {}",
        config.pages, config.mean_endurance, config.seed
    );
    println!(
        "faults: {} cell groups/page (sigma {:.0}%), {} correction, {:.0}% spares\n",
        fault_cfg.cell_groups_per_page,
        100.0 * fault_cfg.group_sigma_fraction,
        fault_cfg.policy.label(),
        100.0 * fault_cfg.spare_fraction,
    );

    let reports = degradation_matrix(
        &config.pcm_config(),
        &fault_cfg,
        &SCHEMES,
        &[AttackKind::Repeat],
        &SimLimits::default(),
    );

    let headers = vec![
        "scheme",
        "first_fault",
        "first_retire",
        "1%_loss",
        "spares_out",
        "device_writes",
        "corrected",
        "retired",
        "years",
    ];
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                fmt_opt(r.first_fault_device_writes),
                fmt_opt(r.first_retirement_device_writes),
                fmt_opt(r.device_writes_to_capacity_loss(0.01)),
                fmt_opt(r.spare_exhausted_device_writes),
                r.device_writes.to_string(),
                r.corrected_groups.to_string(),
                r.retired_pages.to_string(),
                format!("{:.2}", r.years),
            ]
        })
        .collect();
    print_table(&headers, &rows);

    println!("\ndegradation curves (physical capacity remaining @ device writes):");
    for r in &reports {
        let tag = match r.end {
            DegradationEnd::SpareExhausted => "spares exhausted",
            DegradationEnd::WriteBudget => "write budget (lower bound)",
        };
        println!("  {:>8} [{tag}]: {}", r.scheme, downsample(r, 8).join(" "));
    }
    twl_bench::finish_telemetry();
}
