//! Regenerates **Figure 9**: execution time normalized to NOWL for
//! every PARSEC benchmark under BWL, SR and TWL.
//!
//! Paper averages: BWL +6.48 %, SR +1.97 %, TWL +1.90 %, with TWL's
//! worst case +2.7 % on vips (the highest-bandwidth benchmark).
//!
//! Performance runs use a nominal-endurance device (wear never matters)
//! and drive each benchmark's calibrated workload at the arrival rate
//! its Table 2 bandwidth implies.
//!
//! Run: `cargo run --release -p twl-bench --bin fig9_perf [-- --pages N ...]`

use twl_bench::{print_table, ExperimentConfig};
use twl_lifetime::{build_scheme, SchemeKind};
use twl_memctrl::{simulate_execution, simulate_execution_banked, MemCtrlConfig};
use twl_pcm::{PcmConfig, PcmDevice};
use twl_workloads::ParsecBenchmark;

/// Requests simulated per benchmark/scheme pair.
const REQUESTS: u64 = 400_000;

fn main() {
    let config = ExperimentConfig::from_env();
    twl_bench::init_telemetry("fig9_perf", &config);
    println!("Figure 9: normalized execution time (vs NOWL)");
    println!(
        "device: {} pages (nominal endurance), seed {}\n",
        config.pages, config.seed
    );
    let pcm = PcmConfig::scaled(config.pages, 100_000_000, config.seed);

    let schemes = [SchemeKind::Bwl, SchemeKind::Sr, SchemeKind::TwlSwp];
    let mut headers: Vec<&str> = vec!["benchmark"];
    headers.extend(schemes.iter().map(|s| s.label()));
    let mut sums = vec![0.0f64; schemes.len()];
    let mut rows = Vec::new();

    for bench in ParsecBenchmark::ALL {
        let read_fraction = 0.55;
        let ctrl = MemCtrlConfig::for_bandwidth(
            bench.write_bandwidth_mbps(),
            pcm.page_size_bytes,
            read_fraction,
        );

        // Baseline: NOWL on the identical command stream.
        let mut base_device = PcmDevice::new(&pcm);
        let mut nowl = build_scheme(SchemeKind::Nowl, &base_device).expect("NOWL builds");
        let mut workload = bench.workload(config.pages, config.seed);
        let base = simulate_execution(
            &ctrl,
            nowl.as_mut(),
            &mut base_device,
            &mut workload,
            REQUESTS,
        )
        .expect("nominal endurance cannot wear out");

        let mut cells = vec![bench.name().to_owned()];
        for (i, &kind) in schemes.iter().enumerate() {
            let mut device = PcmDevice::new(&pcm);
            let mut scheme =
                build_scheme(kind, &device).unwrap_or_else(|e| panic!("cannot build {kind}: {e}"));
            let mut workload = bench.workload(config.pages, config.seed);
            let report =
                simulate_execution(&ctrl, scheme.as_mut(), &mut device, &mut workload, REQUESTS)
                    .expect("nominal endurance cannot wear out");
            let normalized = report.normalized_to(&base);
            sums[i] += normalized;
            cells.push(format!("{normalized:.4}"));
        }
        rows.push(cells);
    }

    let mut mean_row = vec!["MEAN".to_owned()];
    for sum in &sums {
        mean_row.push(format!("{:.4}", sum / ParsecBenchmark::ALL.len() as f64));
    }
    rows.push(mean_row);
    print_table(&headers, &rows);
    println!("\npaper means: BWL 1.0648, SR 1.0197, TWL 1.0190 (TWL max 1.027 on vips)");

    // Cross-check with the bank-level model on the extremes (vips is
    // the paper's worst case, streamcluster the idlest).
    println!("\nbank-level model cross-check (vips / streamcluster):");
    let mut rows = Vec::new();
    for bench in [ParsecBenchmark::Vips, ParsecBenchmark::Streamcluster] {
        let ctrl =
            MemCtrlConfig::for_bandwidth(bench.write_bandwidth_mbps(), pcm.page_size_bytes, 0.55);
        let mut base_device = PcmDevice::new(&pcm);
        let mut nowl = build_scheme(SchemeKind::Nowl, &base_device).expect("NOWL builds");
        let mut workload = bench.workload(config.pages, config.seed);
        let base = simulate_execution_banked(
            &ctrl,
            nowl.as_mut(),
            &mut base_device,
            &mut workload,
            REQUESTS,
        )
        .expect("nominal endurance cannot wear out");
        let mut cells = vec![bench.name().to_owned()];
        for &kind in &schemes {
            let mut device = PcmDevice::new(&pcm);
            let mut scheme =
                build_scheme(kind, &device).unwrap_or_else(|e| panic!("cannot build {kind}: {e}"));
            let mut workload = bench.workload(config.pages, config.seed);
            let report = simulate_execution_banked(
                &ctrl,
                scheme.as_mut(),
                &mut device,
                &mut workload,
                REQUESTS,
            )
            .expect("nominal endurance cannot wear out");
            cells.push(format!("{:.4}", report.normalized_to(&base)));
        }
        rows.push(cells);
    }
    print_table(&headers, &rows);
    twl_bench::finish_telemetry();
}
