#![warn(missing_docs)]

//! Shared harness utilities for the table/figure-regenerating binaries.
//!
//! Every binary in this crate regenerates one table or figure of the
//! DAC'17 paper — see `DESIGN.md` §4 for the index. The binaries share a
//! scaled experiment device (configurable via CLI flags) and the simple
//! fixed-width table printer in this module.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use twl_pcm::{PcmConfig, PcmDevice};
use twl_telemetry::{JsonlSink, TelemetryRecord};

/// Tables printed so far by this process (for CSV file naming).
static TABLE_COUNTER: AtomicU32 = AtomicU32::new(0);

/// Scaled-device parameters for an experiment run, parsed from CLI args.
///
/// Flags (all optional):
///
/// * `--pages N` — device pages (default 4096; must be an even power of
///   two for cross-scheme comparability).
/// * `--endurance N` — mean endurance in writes (default 50 000).
/// * `--seed N` — process-variation seed (default 42).
/// * `--quick` — divide endurance by 10 for a fast smoke run.
///
/// # Examples
///
/// ```
/// use twl_bench::ExperimentConfig;
///
/// let config = ExperimentConfig::from_args(["--pages", "1024", "--quick"]);
/// assert_eq!(config.pages, 1024);
/// assert_eq!(config.mean_endurance, 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Device pages.
    pub pages: u64,
    /// Mean endurance per page.
    pub mean_endurance: u64,
    /// Process-variation seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Parses flags from an iterator of argument strings.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn from_args<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut config = Self {
            pages: 4096,
            mean_endurance: 50_000,
            seed: 42,
        };
        let mut quick = false;
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut grab = |name: &str| -> u64 {
                iter.next()
                    .unwrap_or_else(|| panic!("{name} needs a value"))
                    .as_ref()
                    .parse()
                    .unwrap_or_else(|_| panic!("{name} needs an integer value"))
            };
            match arg.as_ref() {
                "--pages" => config.pages = grab("--pages"),
                "--endurance" => config.mean_endurance = grab("--endurance"),
                "--seed" => config.seed = grab("--seed"),
                "--quick" => quick = true,
                other => panic!("unknown flag {other}; see twl-bench docs"),
            }
        }
        if quick {
            config.mean_endurance = (config.mean_endurance / 10).max(1_000);
        }
        config
    }

    /// Parses the process's CLI arguments.
    #[must_use]
    pub fn from_env() -> Self {
        Self::from_args(env::args().skip(1))
    }

    /// Builds the scaled PCM device.
    #[must_use]
    pub fn device(&self) -> PcmDevice {
        PcmDevice::new(&self.pcm_config())
    }

    /// The scaled device configuration.
    #[must_use]
    pub fn pcm_config(&self) -> PcmConfig {
        PcmConfig::scaled(self.pages, self.mean_endurance, self.seed)
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::from_args(std::iter::empty::<&str>())
    }
}

/// Installs the JSONL trace sink for a bench binary and emits the run
/// header.
///
/// The trace lands at `results/<tool>.trace.jsonl` by default; the
/// `TWL_TRACE_OUT` environment variable overrides the path, and the
/// values `0`, `none`, or `off` disable tracing entirely. Inspect the
/// result with `cargo run --bin twl-stats -- <trace>`.
pub fn init_telemetry(tool: &str, config: &ExperimentConfig) {
    let path = match env::var("TWL_TRACE_OUT") {
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("none") || v.eq_ignore_ascii_case("off") => {
            return;
        }
        Ok(v) => PathBuf::from(v),
        Err(_) => PathBuf::from("results").join(format!("{tool}.trace.jsonl")),
    };
    match JsonlSink::create(&path) {
        Ok(sink) => {
            twl_telemetry::install_sink(sink);
            twl_telemetry::emit(&TelemetryRecord::RunStart {
                tool: tool.to_owned(),
                pages: config.pages,
                mean_endurance: config.mean_endurance,
                seed: config.seed,
            });
            eprintln!("telemetry: tracing to {}", path.display());
        }
        Err(e) => eprintln!("warning: telemetry disabled ({}: {e})", path.display()),
    }
}

/// Dumps the global metrics registry into the trace and flushes/removes
/// every sink. Call once at the end of `main`.
pub fn finish_telemetry() {
    if twl_telemetry::enabled() {
        twl_telemetry::emit(&TelemetryRecord::Counters(
            twl_telemetry::global().snapshot(),
        ));
    }
    twl_telemetry::clear_sinks();
}

/// Renders a fixed-width table — a header row, a separator, then rows —
/// as a string ending in a newline. The `twl-ctl` client renders remote
/// job results through this exact function so daemon output matches the
/// bench binaries'.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
#[must_use]
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        out.push_str("  ");
        out.push_str(&joined.join("  "));
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str("  ");
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Prints a fixed-width table: a header row, a separator, then rows.
///
/// When the `TWL_BENCH_CSV_DIR` environment variable names a directory,
/// the table is additionally written there as
/// `<binary>_<n>.csv` for downstream plotting.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    if let Ok(dir) = env::var("TWL_BENCH_CSV_DIR") {
        if let Err(e) = write_csv(&dir, headers, rows) {
            eprintln!("warning: could not write CSV to {dir}: {e}");
        }
    }
    print!("{}", format_table(headers, rows));
}

/// Writes the table as CSV into `dir`, naming the file after the
/// running binary and a per-process table counter.
fn write_csv(dir: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    let n = TABLE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let exe = env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "table".to_owned());
    // Strip cargo's test-binary hash suffix if present.
    let exe = exe.split('-').next().unwrap_or("table").to_owned();
    let path: PathBuf = [dir, &format!("{exe}_{n}.csv")].iter().collect();
    let escape = |cell: &str| {
        if cell.contains([',', '"', '\n']) {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_owned()
        }
    };
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ExperimentConfig::default();
        assert_eq!(c.pages, 4096);
        assert_eq!(c.mean_endurance, 50_000);
        assert_eq!(c.seed, 42);
    }

    #[test]
    fn flags_override() {
        let c =
            ExperimentConfig::from_args(["--pages", "512", "--endurance", "9000", "--seed", "7"]);
        assert_eq!((c.pages, c.mean_endurance, c.seed), (512, 9000, 7));
    }

    #[test]
    fn quick_divides_endurance() {
        let c = ExperimentConfig::from_args(["--quick"]);
        assert_eq!(c.mean_endurance, 5_000);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = ExperimentConfig::from_args(["--bogus"]);
    }

    #[test]
    fn csv_export_writes_a_file() {
        let dir = std::env::temp_dir().join("twl_bench_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let dir_str = dir.to_string_lossy().into_owned();
        write_csv(&dir_str, &["a", "b"], &[vec!["1".into(), "x,y".into()]]).unwrap();
        let written: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".csv"))
            .collect();
        assert!(!written.is_empty());
        let content = std::fs::read_to_string(written[0].path()).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert!(content.contains("\"x,y\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_table_aligns_columns() {
        let rendered = format_table(
            &["scheme", "years"],
            &[
                vec!["NOWL".into(), "0.5".into()],
                vec!["TWL_swp".into(), "12.25".into()],
            ],
        );
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("scheme"));
        assert!(lines[1].chars().all(|c| c == '-' || c == ' '));
        assert!(lines[3].contains("TWL_swp"));
        assert!(rendered.ends_with('\n'));
    }

    #[test]
    fn device_builds() {
        let c = ExperimentConfig::from_args(["--pages", "64", "--endurance", "1000"]);
        assert_eq!(c.device().page_count(), 64);
    }
}
