//! Criterion micro-benchmarks of the simulator's hot paths: the RNGs,
//! the Feistel permutation, each scheme's write path, and the Bloom
//! filters. These guard the simulator's own performance (a lifetime run
//! is ~10⁸ scheme writes), complementing the table/figure harness
//! binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use twl_baselines::{BloomFilterWl, BwlConfig, CountingBloomFilter, SecurityRefresh, SrConfig};
use twl_core::{TossUpWearLeveling, TwlConfig};
use twl_pcm::{LogicalPageAddr, PcmConfig, PcmDevice};
use twl_rng::{FeistelPermutation, FeistelRng, SplitMix64, Xoshiro256StarStar};
use twl_telemetry::TelemetryRecord;
use twl_wl_core::{Nowl, WearLeveler};
use twl_workloads::{SyntheticWorkload, WorkloadConfig};

const PAGES: u64 = 4096;

fn bench_rngs(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(1));
    let mut sm = SplitMix64::seed_from(1);
    group.bench_function("splitmix64", |b| b.iter(|| black_box(sm.next_u64())));
    let mut xo = Xoshiro256StarStar::seed_from(1);
    group.bench_function("xoshiro256**", |b| b.iter(|| black_box(xo.next_u64())));
    let mut fe = FeistelRng::new(1);
    group.bench_function("feistel_u8", |b| b.iter(|| black_box(fe.next_u8())));
    let perm = FeistelPermutation::new(12, 7, 4);
    let mut i = 0u64;
    group.bench_function("feistel_permute_12b", |b| {
        b.iter(|| {
            i = (i + 1) & 0xFFF;
            black_box(perm.permute(i))
        })
    });
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom");
    group.throughput(Throughput::Elements(1));
    let mut cbf = CountingBloomFilter::new(16_384, 4);
    let mut i = 0u64;
    group.bench_function("cbf_insert", |b| {
        b.iter(|| {
            i += 1;
            black_box(cbf.insert(i % PAGES))
        })
    });
    group.bench_function("cbf_estimate", |b| {
        b.iter(|| {
            i += 1;
            black_box(cbf.estimate(i % PAGES))
        })
    });
    group.finish();
}

fn scheme_write_bench(
    c: &mut Criterion,
    name: &str,
    make: impl Fn(&PcmDevice) -> Box<dyn WearLeveler>,
) {
    let pcm = PcmConfig::scaled(PAGES, 100_000_000, 1);
    let mut group = c.benchmark_group("scheme_write");
    group.throughput(Throughput::Elements(1000));
    group.bench_function(name, |b| {
        b.iter_batched(
            || {
                let device = PcmDevice::new(&pcm);
                let scheme = make(&device);
                let workload = SyntheticWorkload::new(&WorkloadConfig {
                    pages: PAGES,
                    footprint: PAGES / 2,
                    zipf_alpha: 0.9,
                    read_fraction: 0.0,
                    seed: 3,
                });
                (device, scheme, workload)
            },
            |(mut device, mut scheme, mut workload)| {
                for _ in 0..1000 {
                    let la = workload.next_write_la();
                    let la = LogicalPageAddr::new(la.index() % scheme.page_count());
                    scheme.write(la, &mut device).expect("healthy device");
                }
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_schemes(c: &mut Criterion) {
    scheme_write_bench(c, "nowl_1k", |d| Box::new(Nowl::new(d.page_count())));
    scheme_write_bench(c, "twl_swp_1k", |d| {
        Box::new(TossUpWearLeveling::new(
            &TwlConfig::dac17(),
            d.endurance_map(),
        ))
    });
    scheme_write_bench(c, "security_refresh_1k", |d| {
        let pages = d.page_count();
        Box::new(
            SecurityRefresh::new(
                &SrConfig::for_scaled_device(pages, d.config().mean_endurance)
                    .expect("power-of-two device"),
                pages,
            )
            .expect("valid config"),
        )
    });
    scheme_write_bench(c, "bwl_1k", |d| {
        Box::new(BloomFilterWl::new(
            &BwlConfig::for_pages(d.page_count()),
            d.page_count(),
        ))
    });
}

fn bench_telemetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");
    group.throughput(Throughput::Elements(1));
    let counter = twl_telemetry::global().counter("bench.counter");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let hist = twl_telemetry::global().histogram("bench.hist");
    let mut i = 0u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            i += 1;
            hist.record(i & 0xFFFF);
        })
    });
    // No sink installed in this process, so this measures the hot-path
    // guard every instrumented simulation write pays: a single relaxed
    // atomic load, no serialization.
    let record = TelemetryRecord::Alarm {
        scheme: "bench".to_owned(),
        window: 1,
        share: 0.5,
    };
    group.bench_function("emit_with_sinks_disabled", |b| {
        b.iter(|| twl_telemetry::emit(black_box(&record)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rngs,
    bench_bloom,
    bench_schemes,
    bench_telemetry
);
criterion_main!(benches);
