//! A minimal JSON value, writer, and parser.
//!
//! The workspace cannot pull `serde_json` (no registry access), and the
//! telemetry schema is small and flat, so this module carries exactly
//! what the JSONL sinks and the `twl-stats` reader need: objects,
//! arrays, strings, integers, floats, booleans, and null, with correct
//! string escaping in both directions.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (kept exact — wear counters exceed `f64` precision).
    Int(i128),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-independent (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// The value at `key`, if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a `u64` (integers only).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as an `f64` (floats or integers).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // Always keep a decimal point so the parser round-trips
                    // the value back to Float.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        let _ = write!(out, "{f:.1}");
                    } else {
                        let _ = write!(out, "{f}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Convenience constructor for float fields.
#[must_use]
pub fn num(v: f64) -> Json {
    Json::Float(v)
}

/// Convenience constructor for integer fields.
#[must_use]
pub fn int(v: u64) -> Json {
    Json::Int(i128::from(v))
}

/// Convenience constructor for string fields.
#[must_use]
pub fn str(v: &str) -> Json {
    Json::Str(v.to_owned())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' | b'-' | b'+' => *pos += 1,
            b'.' | b'e' | b'E' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| format!("bad float `{text}`: {e}"))
    } else {
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|e| format!("bad integer `{text}`: {e}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_owned()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("empty string tail")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // `{`
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // `[`
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let value = Json::obj([
            ("schema", str("twl-telemetry/v1")),
            ("kind", str("test")),
            ("count", int(u64::MAX)),
            ("ratio", num(0.025)),
            ("whole", num(3.0)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("items", Json::Arr(vec![int(1), int(2), str("x\n\"y\"")])),
        ]);
        let text = value.to_compact();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, value);
    }

    #[test]
    fn large_integers_stay_exact() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn escapes_survive() {
        let v = Json::Str("tab\t quote\" slash\\ newline\n".to_owned());
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,").is_err());
    }

    #[test]
    fn unicode_content_roundtrips() {
        let v = Json::Str("wear ≤ 10⁸ écrit".to_owned());
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
    }
}
