//! Record sinks and the global emission pipeline.
//!
//! [`emit`] fans a [`TelemetryRecord`] out to every installed [`Sink`].
//! The fast path — no sink installed, or telemetry disabled — is a single
//! relaxed atomic load, so instrumented hot loops pay nothing measurable
//! when tracing is off.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::record::TelemetryRecord;

/// A destination for trace records.
pub trait Sink: Send {
    /// Consumes one record.
    fn record(&mut self, record: &TelemetryRecord);

    /// Flushes any buffered output.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, if any.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Collects records in memory; meant for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Arc<Mutex<Vec<TelemetryRecord>>>,
}

impl MemorySink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared handle to the record buffer; stays readable after the
    /// sink itself is installed into the global pipeline.
    #[must_use]
    pub fn handle(&self) -> Arc<Mutex<Vec<TelemetryRecord>>> {
        Arc::clone(&self.records)
    }
}

impl Sink for MemorySink {
    fn record(&mut self, record: &TelemetryRecord) {
        self.records
            .lock()
            .expect("memory sink poisoned")
            .push(record.clone());
    }
}

/// Appends records as compact JSONL lines to a buffered file.
#[derive(Debug)]
pub struct JsonlSink {
    writer: BufWriter<File>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(Self {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, record: &TelemetryRecord) {
        // A failed trace write must not kill a multi-hour simulation;
        // drop the record instead.
        let _ = writeln!(self.writer, "{}", record.to_jsonl());
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }
}

struct Pipeline {
    enabled: AtomicBool,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
}

fn pipeline() -> &'static Pipeline {
    static PIPELINE: OnceLock<Pipeline> = OnceLock::new();
    PIPELINE.get_or_init(|| Pipeline {
        enabled: AtomicBool::new(false),
        sinks: Mutex::new(Vec::new()),
    })
}

/// Installs a sink; emission turns on automatically.
pub fn install_sink(sink: impl Sink + 'static) {
    let p = pipeline();
    p.sinks
        .lock()
        .expect("sink table poisoned")
        .push(Box::new(sink));
    p.enabled.store(true, Ordering::Release);
}

/// Flushes and removes every installed sink; emission turns off.
pub fn clear_sinks() {
    let p = pipeline();
    p.enabled.store(false, Ordering::Release);
    let mut sinks = p.sinks.lock().expect("sink table poisoned");
    for sink in sinks.iter_mut() {
        let _ = sink.flush();
    }
    sinks.clear();
}

/// Master emission switch: overrides without touching installed sinks.
pub fn set_enabled(on: bool) {
    let p = pipeline();
    let has_sinks = !p.sinks.lock().expect("sink table poisoned").is_empty();
    p.enabled.store(on && has_sinks, Ordering::Release);
}

/// Whether records currently reach any sink.
#[must_use]
pub fn enabled() -> bool {
    pipeline().enabled.load(Ordering::Relaxed)
}

/// Sends a record to every installed sink. One relaxed load when
/// emission is off.
pub fn emit(record: &TelemetryRecord) {
    let p = pipeline();
    if !p.enabled.load(Ordering::Relaxed) {
        return;
    }
    for sink in p.sinks.lock().expect("sink table poisoned").iter_mut() {
        sink.record(record);
    }
}

/// Serializes tests that exercise the process-global pipeline; the
/// test binary runs modules in parallel, so every test that installs a
/// sink must hold this first.
#[cfg(test)]
pub(crate) fn pipeline_test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Flushes all installed sinks without removing them.
pub fn flush_sinks() {
    for sink in pipeline()
        .sinks
        .lock()
        .expect("sink table poisoned")
        .iter_mut()
    {
        let _ = sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alarm(window: u64) -> TelemetryRecord {
        TelemetryRecord::Alarm {
            scheme: "twl".to_owned(),
            window,
            share: 0.9,
        }
    }

    // The pipeline is process-global state shared with other modules'
    // tests; `pipeline_test_guard` serializes them.
    #[test]
    fn pipeline_fans_out_and_honours_switch() {
        let _lock = pipeline_test_guard();
        assert!(!enabled(), "emission starts off");
        emit(&alarm(0)); // goes nowhere, must not panic

        let sink = MemorySink::new();
        let records = sink.handle();
        install_sink(sink);
        assert!(enabled(), "installing a sink enables emission");

        emit(&alarm(1));
        set_enabled(false);
        emit(&alarm(2)); // suppressed
        set_enabled(true);
        emit(&alarm(3));

        clear_sinks();
        assert!(!enabled());
        emit(&alarm(4)); // suppressed, sink already removed

        let seen: Vec<u64> = records
            .lock()
            .expect("buffer")
            .iter()
            .map(|r| match r {
                TelemetryRecord::Alarm { window, .. } => *window,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        assert_eq!(seen, vec![1, 3]);

        // set_enabled(true) with no sinks installed stays off.
        set_enabled(true);
        assert!(!enabled());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("twl-telemetry-test");
        let path = dir.join("trace.jsonl");
        let mut sink = JsonlSink::create(&path).expect("create trace");
        sink.record(&alarm(7));
        sink.flush().expect("flush");
        let text = std::fs::read_to_string(&path).expect("read back");
        let record = TelemetryRecord::from_jsonl(text.trim()).expect("parse line");
        assert_eq!(record, alarm(7));
        let _ = std::fs::remove_file(&path);
    }
}
