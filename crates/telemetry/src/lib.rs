//! `twl-telemetry`: the unified observability layer for the tossup-wl
//! workspace.
//!
//! Four pieces:
//!
//! 1. **Metrics registry** ([`Registry`], [`global`]) — monotonic
//!    counters, gauges, and fixed-bucket histograms behind `&'static`
//!    handles, so hot paths (the wear-leveling engine, the memory
//!    controller) record without threading `&mut` state through their
//!    APIs. The [`counter!`], [`gauge!`] and [`histogram!`] macros cache
//!    the lookup per call site; steady state is one relaxed atomic op.
//! 2. **Wear-map sampling** ([`WearMapSampler`], [`WearSummary`]) —
//!    per-page write-count histograms plus Gini / CoV wear-inequality
//!    summaries captured every N writes into a bounded ring buffer.
//! 3. **Sinks** ([`Sink`], [`MemorySink`], [`JsonlSink`], [`emit`]) —
//!    pluggable record destinations: in-memory for tests, buffered
//!    schema-versioned JSONL files for benchmark tools, and the
//!    scope-routed [`RoutingJsonlSink`] that fans one pipeline out to
//!    per-job trace files keyed by a thread-local label
//!    ([`ScopeGuard`]) — how the `twl-service` daemon gives every job
//!    its own trace. When no sink is installed, [`emit`] costs one
//!    relaxed atomic load.
//! 4. **Spans** ([`SpanGuard`], [`span!`], [`AggregateSpan`]) —
//!    wall-clock phase timing with parent/child nesting via a
//!    thread-local span stack, emitted as `span` records; entirely off
//!    the simulation RNG path, and free when no sink is installed.
//! 5. **Prometheus exposition** ([`prom`]) — renders a
//!    [`MetricsSnapshot`] as a text-format (v0.0.4) scrape page, with a
//!    matching parser/format-lint.
//! 6. **Inspection** ([`Trace`], [`render_summary_table`],
//!    [`render_summary_json`], [`render_span_table`], [`diff_traces`])
//!    — the library behind the `twl-stats` binary: loads JSONL traces,
//!    renders per-scheme tables (or one machine-readable JSON
//!    document), folds span records into self-time profiles, and flags
//!    wear-out regressions between two traces.
//!
//! Every emitted record carries [`SCHEMA_VERSION`] so traces remain
//! self-describing as the schema evolves.

#![warn(missing_docs)]

mod inspect;
mod metrics;
mod record;
mod route;
mod sink;
mod span;
mod wear;

pub mod json;
pub mod prom;

/// Schema tag stamped on every JSONL record.
pub const SCHEMA_VERSION: &str = "twl-telemetry/v1";

pub use inspect::{
    diff_traces, render_span_json, render_span_table, render_summary_json, render_summary_table,
    DegradationCell, Regression, SpanProfileRow, Trace,
};
pub use metrics::{
    global, quantile_from_buckets, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot,
    Registry,
};
pub use record::{SchemeSummary, TelemetryRecord};
pub use route::{clear_scope, current_scope, set_scope, RoutingJsonlSink, ScopeGuard};
pub use sink::{
    clear_sinks, emit, enabled, flush_sinks, install_sink, set_enabled, JsonlSink, MemorySink, Sink,
};
pub use span::{emit_measured, set_spans_enabled, spans_enabled, AggregateSpan, SpanGuard};
pub use wear::{WearMapSampler, WearSnapshot, WearSummary, WEAR_BUCKETS};
