//! The metrics registry: monotonic counters, gauges, and fixed-bucket
//! histograms with `&'static` handles.
//!
//! Hot paths record through shared references to interned metrics, so no
//! `&mut` plumbing is needed through scheme or controller APIs and no
//! allocation happens after a handle is created. Use the [`counter!`],
//! [`gauge!`] and [`histogram!`](crate::histogram!) macros at call sites:
//! they cache the registry lookup in a `OnceLock`, so the steady-state
//! cost of a record is one relaxed atomic op.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (which may be negative); useful for occupancy-style
    /// gauges such as busy-worker counts.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A histogram over fixed power-of-two buckets: bucket `i` counts
/// samples in `[2^i, 2^(i+1))`, with bucket 0 also holding zeros and the
/// last bucket absorbing overflow.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; Self::BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Number of power-of-two buckets (covers `u64` values up to 2³¹).
    pub const BUCKETS: usize = 32;

    /// Creates an empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; Self::BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            (63 - v.leading_zeros() as usize).min(Self::BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records `n` identical samples in O(1).
    ///
    /// Leaves the histogram in exactly the state `n` [`Histogram::record`]
    /// calls with `v` would: every field is a sum (or a max), so folding
    /// identical samples is associative. This is the flush arm of batch
    /// loops that count samples locally instead of paying one atomic
    /// round-trip per event.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = if v == 0 {
            0
        } else {
            (63 - v.leading_zeros() as usize).min(Self::BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Per-bucket counts.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the power-of-two bucket the rank falls in, clamped to the
    /// largest sample actually seen. Empty histograms report `0.0`, not
    /// NaN.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count() == 0 {
            return 0.0;
        }
        quantile_from_buckets(&self.bucket_counts(), q).min(self.max() as f64)
    }

    /// The (p50, p90, p99) triple of [`Self::quantile`].
    #[must_use]
    pub fn percentiles(&self) -> (f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
        )
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Interpolates the `q`-quantile from power-of-two bucket counts laid
/// out like [`Histogram`]'s: bucket `i` covers `[2^i, 2^(i+1))` with
/// bucket 0 also holding zeros. Returns `0.0` when every bucket is
/// empty. The result is the interpolated position inside the bucket the
/// rank lands in, so it can exceed the true maximum sample — callers
/// with a tracked max (see [`Histogram::quantile`]) should clamp.
#[must_use]
pub fn quantile_from_buckets(buckets: &[u64], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
    let mut cum = 0.0_f64;
    let mut last_nonzero_upper = 0.0_f64;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let lower = if i == 0 { 0.0 } else { (i as f64).exp2() };
        let upper = ((i + 1) as f64).exp2();
        last_nonzero_upper = upper;
        let next = cum + c as f64;
        if next >= rank {
            let within = ((rank - cum) / c as f64).clamp(0.0, 1.0);
            return lower + (upper - lower) * within;
        }
        cum = next;
    }
    // Torn concurrent reads can leave `rank` past the scanned mass;
    // the upper edge of the last occupied bucket is the honest answer.
    last_nonzero_upper
}

/// Interned storage: names are registered once and leaked, so handles
/// are `&'static` and hot paths never touch the registry lock again.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<Vec<(&'static str, &'static Counter)>>,
    gauges: Mutex<Vec<(&'static str, &'static Gauge)>>,
    histograms: Mutex<Vec<(&'static str, &'static Histogram)>>,
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter names and values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge names and values, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// A point-in-time copy of one [`Histogram`], buckets included, so
/// consumers (Prometheus exposition, `twl-stats` percentiles) can work
/// from a trace or a wire snapshot without the live registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Per-bucket counts in [`Histogram`]'s power-of-two layout. May be
    /// empty when decoded from a pre-bucket trace record.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// [`Histogram::quantile`] over the captured buckets: interpolated,
    /// max-clamped, and `0.0` when empty (or when the snapshot carries
    /// no bucket detail).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.buckets.is_empty() {
            return 0.0;
        }
        quantile_from_buckets(&self.buckets, q).min(self.max as f64)
    }

    /// Mean sample value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Registry {
    /// Returns (interning on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut table = self.counters.lock().expect("registry poisoned");
        if let Some(&(_, c)) = table.iter().find(|(n, _)| *n == name) {
            return c;
        }
        let entry: (&'static str, &'static Counter) = (
            Box::leak(name.to_owned().into_boxed_str()),
            Box::leak(Box::new(Counter::new())),
        );
        table.push(entry);
        entry.1
    }

    /// Returns (interning on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut table = self.gauges.lock().expect("registry poisoned");
        if let Some(&(_, g)) = table.iter().find(|(n, _)| *n == name) {
            return g;
        }
        let entry: (&'static str, &'static Gauge) = (
            Box::leak(name.to_owned().into_boxed_str()),
            Box::leak(Box::new(Gauge::new())),
        );
        table.push(entry);
        entry.1
    }

    /// Returns (interning on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut table = self.histograms.lock().expect("registry poisoned");
        if let Some(&(_, h)) = table.iter().find(|(n, _)| *n == name) {
            return h;
        }
        let entry: (&'static str, &'static Histogram) = (
            Box::leak(name.to_owned().into_boxed_str()),
            Box::leak(Box::new(Histogram::new())),
        );
        table.push(entry);
        entry.1
    }

    /// Copies every metric's current value, each section sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for &(n, c) in self.counters.lock().expect("registry poisoned").iter() {
            snap.counters.push((n.to_owned(), c.get()));
        }
        for &(n, g) in self.gauges.lock().expect("registry poisoned").iter() {
            snap.gauges.push((n.to_owned(), g.get()));
        }
        for &(n, h) in self.histograms.lock().expect("registry poisoned").iter() {
            snap.histograms.push(HistogramSnapshot {
                name: n.to_owned(),
                count: h.count(),
                sum: h.sum(),
                max: h.max(),
                buckets: h.bucket_counts(),
            });
        }
        snap.counters.sort();
        snap.gauges.sort();
        snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        snap
    }

    /// Zeroes every registered metric (handles stay valid). Meant for
    /// test and benchmark isolation, not for concurrent hot-path use.
    pub fn reset(&self) {
        for &(_, c) in self.counters.lock().expect("registry poisoned").iter() {
            c.reset();
        }
        for &(_, g) in self.gauges.lock().expect("registry poisoned").iter() {
            g.reset();
        }
        for &(_, h) in self.histograms.lock().expect("registry poisoned").iter() {
            h.reset();
        }
    }
}

/// The process-wide registry.
#[must_use]
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Returns a `&'static Counter` for `$name`, caching the registry lookup
/// at the call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Returns a `&'static Gauge` for `$name`, caching the registry lookup
/// at the call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// Returns a `&'static Histogram` for `$name`, caching the registry
/// lookup at the call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::global().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_by_name() {
        let registry = Registry::default();
        let a = registry.counter("test.a");
        let b = registry.counter("test.a");
        assert!(std::ptr::eq(a, b));
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let registry = Registry::default();
        registry.counter("z.last").add(5);
        registry.counter("a.first").add(1);
        registry.gauge("queue.depth").set(-3);
        registry.histogram("lat").record(7);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.first".to_owned(), 1), ("z.last".to_owned(), 5)]
        );
        assert_eq!(snap.gauges, vec![("queue.depth".to_owned(), -3)]);
        assert_eq!(snap.histograms.len(), 1);
        let h = &snap.histograms[0];
        assert_eq!((h.name.as_str(), h.count, h.sum, h.max), ("lat", 1, 7, 7));
        assert_eq!(h.buckets.len(), Histogram::BUCKETS);
        assert_eq!(h.buckets[2], 1, "7 lands in [4,8)");
        assert_eq!(h.quantile(0.5), 7.0, "interpolation clamps to max");
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::new();
        for v in [0, 1, 1, 3, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), u64::MAX);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 3, "zeros and ones share bucket 0");
        assert_eq!(buckets[1], 1, "3 lands in [2,4)");
        assert_eq!(buckets[10], 1, "1024 lands in [1024,2048)");
        assert_eq!(buckets[Histogram::BUCKETS - 1], 1, "overflow clamps");
    }

    #[test]
    fn quantiles_interpolate_and_guard_empty() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram reports 0, not NaN");
        assert_eq!(h.percentiles(), (0.0, 0.0, 0.0));

        // 100 samples spread evenly over [0, 100): p50 should land near
        // the middle, p99 near (but never past) the max.
        for v in 0..100u64 {
            h.record(v);
        }
        let (p50, p90, p99) = h.percentiles();
        assert!(
            (32.0..=64.0).contains(&p50),
            "p50 in the [32,64) bucket: {p50}"
        );
        assert!(p50 < p90 && p90 <= p99, "monotone: {p50} {p90} {p99}");
        assert!(p99 <= h.max() as f64, "clamped to max");
    }

    #[test]
    fn quantile_gauge_add_and_zero_samples() {
        let h = Histogram::new();
        for _ in 0..4 {
            h.record(0);
        }
        assert_eq!(h.quantile(0.99), 0.0, "all-zero samples clamp to max=0");

        let g = Gauge::new();
        g.add(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let registry = Registry::default();
        let c = registry.counter("reset.c");
        c.add(9);
        registry.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(
            registry.snapshot().counters,
            vec![("reset.c".to_owned(), 1)]
        );
    }
}
