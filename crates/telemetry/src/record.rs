//! The schema-versioned trace records emitted to sinks.
//!
//! Every record serializes to one JSON object with `schema` and `kind`
//! discriminator fields, so a JSONL trace is self-describing and older
//! readers can skip kinds they do not know.

use crate::json::{int, num, str, Json};
use crate::wear::WearSnapshot;
use crate::MetricsSnapshot;
use crate::SCHEMA_VERSION;

/// Per-scheme end-of-run summary, the unit `twl-stats` tabulates.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeSummary {
    /// Wear-leveling scheme label (e.g. `twl-swp`).
    pub scheme: String,
    /// Workload or attack label the scheme ran under.
    pub workload: String,
    /// Logical writes issued by the workload.
    pub logical_writes: u64,
    /// Physical writes absorbed by the device.
    pub device_writes: u64,
    /// Swaps performed by the scheme.
    pub swaps: u64,
    /// Swaps per logical write.
    pub swap_per_write: f64,
    /// Extra device writes per logical write.
    pub extra_write_ratio: f64,
    /// Attack-monitor alarm rate (alarmed windows / windows; 0 when no
    /// monitor ran).
    pub alarm_rate: f64,
    /// Fraction of mean endurance consumed when the run ended.
    pub capacity_fraction: f64,
    /// Projected lifetime in years.
    pub years: f64,
    /// Gini coefficient of the final wear map.
    pub wear_gini: f64,
    /// Whether the run ran to an actual page wear-out (`false` = the
    /// write budget ran out first, so lifetime numbers are lower
    /// bounds).
    pub completed: bool,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryRecord {
    /// Run header: which tool produced the trace and its device shape.
    RunStart {
        /// Producing binary (e.g. `fig8_lifetime`).
        tool: String,
        /// Pages in the simulated device.
        pages: u64,
        /// Mean cell endurance.
        mean_endurance: u64,
        /// RNG seed of the run.
        seed: u64,
    },
    /// End-of-run summary for one (scheme, workload) cell.
    Summary(SchemeSummary),
    /// A sampled wear-map snapshot.
    Wear {
        /// Scheme the snapshot belongs to.
        scheme: String,
        /// Workload or attack label.
        workload: String,
        /// The captured sample.
        snapshot: WearSnapshot,
    },
    /// Attack-monitor alarm: a window closed over threshold.
    Alarm {
        /// Scheme under which the alarm fired.
        scheme: String,
        /// Index of the alarmed window.
        window: u64,
        /// Heavy-hitter share that tripped the threshold.
        share: f64,
    },
    /// One point on a graceful-degradation curve: the device state at a
    /// page retirement (or the run's end).
    Degradation {
        /// Scheme under test.
        scheme: String,
        /// Workload or attack label.
        workload: String,
        /// Logical writes serviced when the point was captured.
        at_logical_writes: u64,
        /// Device writes absorbed when the point was captured.
        at_device_writes: u64,
        /// Cell-group faults corrected so far.
        corrected_groups: u64,
        /// Pages retired so far.
        retired_pages: u64,
        /// Spare pages still available.
        spares_remaining: u64,
        /// Fraction of physical pages still alive.
        capacity_fraction: f64,
    },
    /// A dump of the global metrics registry.
    Counters(MetricsSnapshot),
    /// One closed timing span (see [`crate::SpanGuard`]): a phase of
    /// work with wall-clock inclusive/exclusive time and its position
    /// in the thread's span tree.
    Span {
        /// Phase name (e.g. `drive`, `cell.build`, `job`).
        name: String,
        /// Free-form grouping label (scheme, workload, job id; may be
        /// empty).
        label: String,
        /// Name of the enclosing span, if any.
        parent: Option<String>,
        /// Nesting depth (0 = root span of its thread).
        depth: u64,
        /// Timed sections folded into this record (1 for a plain span;
        /// >1 for an [`crate::AggregateSpan`]).
        count: u64,
        /// Wall-clock microseconds from open to close.
        inclusive_us: u64,
        /// `inclusive_us` minus time spent inside child spans.
        exclusive_us: u64,
    },
}

impl TelemetryRecord {
    /// The record's `kind` discriminator.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::RunStart { .. } => "run_start",
            Self::Summary(_) => "scheme_summary",
            Self::Wear { .. } => "wear_snapshot",
            Self::Alarm { .. } => "alarm",
            Self::Degradation { .. } => "degradation_point",
            Self::Counters(_) => "counters",
            Self::Span { .. } => "span",
        }
    }

    /// Serializes to a JSON object carrying `schema` and `kind`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = match self {
            Self::RunStart {
                tool,
                pages,
                mean_endurance,
                seed,
            } => Json::obj([
                ("tool", str(tool)),
                ("pages", int(*pages)),
                ("mean_endurance", int(*mean_endurance)),
                ("seed", int(*seed)),
            ]),
            Self::Summary(s) => Json::obj([
                ("scheme", str(&s.scheme)),
                ("workload", str(&s.workload)),
                ("logical_writes", int(s.logical_writes)),
                ("device_writes", int(s.device_writes)),
                ("swaps", int(s.swaps)),
                ("swap_per_write", num(s.swap_per_write)),
                ("extra_write_ratio", num(s.extra_write_ratio)),
                ("alarm_rate", num(s.alarm_rate)),
                ("capacity_fraction", num(s.capacity_fraction)),
                ("years", num(s.years)),
                ("wear_gini", num(s.wear_gini)),
                ("completed", Json::Bool(s.completed)),
            ]),
            Self::Wear {
                scheme,
                workload,
                snapshot,
            } => Json::obj([
                ("scheme", str(scheme)),
                ("workload", str(workload)),
                ("seq", int(snapshot.seq)),
                ("at_writes", int(snapshot.at_writes)),
                ("pages", int(snapshot.summary.pages)),
                ("total", int(snapshot.summary.total)),
                ("mean", num(snapshot.summary.mean)),
                ("cov", num(snapshot.summary.cov)),
                ("gini", num(snapshot.summary.gini)),
                ("p50", int(snapshot.summary.p50)),
                ("p90", int(snapshot.summary.p90)),
                ("p99", int(snapshot.summary.p99)),
                ("max", int(snapshot.summary.max)),
                (
                    "histogram",
                    Json::Arr(snapshot.summary.histogram.iter().map(|&b| int(b)).collect()),
                ),
            ]),
            Self::Alarm {
                scheme,
                window,
                share,
            } => Json::obj([
                ("scheme", str(scheme)),
                ("window", int(*window)),
                ("share", num(*share)),
            ]),
            Self::Degradation {
                scheme,
                workload,
                at_logical_writes,
                at_device_writes,
                corrected_groups,
                retired_pages,
                spares_remaining,
                capacity_fraction,
            } => Json::obj([
                ("scheme", str(scheme)),
                ("workload", str(workload)),
                ("at_logical_writes", int(*at_logical_writes)),
                ("at_device_writes", int(*at_device_writes)),
                ("corrected_groups", int(*corrected_groups)),
                ("retired_pages", int(*retired_pages)),
                ("spares_remaining", int(*spares_remaining)),
                ("capacity_fraction", num(*capacity_fraction)),
            ]),
            Self::Counters(snap) => {
                let counters = Json::Obj(
                    snap.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), int(*v)))
                        .collect(),
                );
                let gauges = Json::Obj(
                    snap.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Int(i128::from(*v))))
                        .collect(),
                );
                let histograms = Json::Obj(
                    snap.histograms
                        .iter()
                        .map(|h| {
                            (
                                h.name.clone(),
                                Json::obj([
                                    ("count", int(h.count)),
                                    ("sum", int(h.sum)),
                                    ("max", int(h.max)),
                                    (
                                        "buckets",
                                        Json::Arr(h.buckets.iter().map(|&b| int(b)).collect()),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                );
                Json::obj([
                    ("counters", counters),
                    ("gauges", gauges),
                    ("histograms", histograms),
                ])
            }
            Self::Span {
                name,
                label,
                parent,
                depth,
                count,
                inclusive_us,
                exclusive_us,
            } => {
                let mut obj = Json::obj([
                    ("name", str(name)),
                    ("label", str(label)),
                    ("depth", int(*depth)),
                    ("count", int(*count)),
                    ("inclusive_us", int(*inclusive_us)),
                    ("exclusive_us", int(*exclusive_us)),
                ]);
                // `parent` rides only when present, so root spans stay
                // compact and older documents re-encode byte-identically.
                if let (Json::Obj(map), Some(parent)) = (&mut obj, parent) {
                    map.insert("parent".to_owned(), str(parent));
                }
                obj
            }
        };
        if let Json::Obj(map) = &mut obj {
            map.insert("schema".to_owned(), str(SCHEMA_VERSION));
            map.insert("kind".to_owned(), str(self.kind()));
        }
        obj
    }

    /// Serializes to one compact JSONL line (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        self.to_json().to_compact()
    }

    /// Deserializes a record previously produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description when the schema or kind is unknown or a
    /// required field is missing/mistyped.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let schema = value
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing `schema` field")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema `{schema}` (reader speaks `{SCHEMA_VERSION}`)"
            ));
        }
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing `kind` field")?;
        let get_u64 = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer `{key}` in `{kind}` record"))
        };
        let get_f64 = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing number `{key}` in `{kind}` record"))
        };
        let get_str = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string `{key}` in `{kind}` record"))
        };
        match kind {
            "run_start" => Ok(Self::RunStart {
                tool: get_str("tool")?,
                pages: get_u64("pages")?,
                mean_endurance: get_u64("mean_endurance")?,
                seed: get_u64("seed")?,
            }),
            "scheme_summary" => Ok(Self::Summary(SchemeSummary {
                scheme: get_str("scheme")?,
                workload: get_str("workload")?,
                logical_writes: get_u64("logical_writes")?,
                device_writes: get_u64("device_writes")?,
                swaps: get_u64("swaps")?,
                swap_per_write: get_f64("swap_per_write")?,
                extra_write_ratio: get_f64("extra_write_ratio")?,
                alarm_rate: get_f64("alarm_rate")?,
                capacity_fraction: get_f64("capacity_fraction")?,
                years: get_f64("years")?,
                wear_gini: get_f64("wear_gini")?,
                completed: matches!(value.get("completed"), Some(Json::Bool(true))),
            })),
            "wear_snapshot" => Ok(Self::Wear {
                scheme: get_str("scheme")?,
                workload: get_str("workload")?,
                snapshot: WearSnapshot {
                    seq: get_u64("seq")?,
                    at_writes: get_u64("at_writes")?,
                    summary: crate::wear::WearSummary {
                        pages: get_u64("pages")?,
                        total: get_u64("total")?,
                        mean: get_f64("mean")?,
                        cov: get_f64("cov")?,
                        gini: get_f64("gini")?,
                        p50: get_u64("p50")?,
                        p90: get_u64("p90")?,
                        p99: get_u64("p99")?,
                        max: get_u64("max")?,
                        histogram: value
                            .get("histogram")
                            .and_then(Json::as_arr)
                            .map(|items| items.iter().filter_map(Json::as_u64).collect())
                            .unwrap_or_default(),
                    },
                },
            }),
            "alarm" => Ok(Self::Alarm {
                scheme: get_str("scheme")?,
                window: get_u64("window")?,
                share: get_f64("share")?,
            }),
            "degradation_point" => Ok(Self::Degradation {
                scheme: get_str("scheme")?,
                workload: get_str("workload")?,
                at_logical_writes: get_u64("at_logical_writes")?,
                at_device_writes: get_u64("at_device_writes")?,
                corrected_groups: get_u64("corrected_groups")?,
                retired_pages: get_u64("retired_pages")?,
                spares_remaining: get_u64("spares_remaining")?,
                capacity_fraction: get_f64("capacity_fraction")?,
            }),
            "counters" => {
                let mut snap = MetricsSnapshot::default();
                if let Some(Json::Obj(map)) = value.get("counters") {
                    for (n, v) in map {
                        if let Some(v) = v.as_u64() {
                            snap.counters.push((n.clone(), v));
                        }
                    }
                }
                if let Some(Json::Obj(map)) = value.get("gauges") {
                    for (n, v) in map {
                        if let Json::Int(i) = v {
                            if let Ok(i) = i64::try_from(*i) {
                                snap.gauges.push((n.clone(), i));
                            }
                        }
                    }
                }
                if let Some(Json::Obj(map)) = value.get("histograms") {
                    for (n, v) in map {
                        let field = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
                        snap.histograms.push(crate::metrics::HistogramSnapshot {
                            name: n.clone(),
                            count: field("count"),
                            sum: field("sum"),
                            max: field("max"),
                            // Optional: pre-bucket traces decode to an
                            // empty vec (quantiles then report 0).
                            buckets: v
                                .get("buckets")
                                .and_then(Json::as_arr)
                                .map(|items| items.iter().filter_map(Json::as_u64).collect())
                                .unwrap_or_default(),
                        });
                    }
                }
                Ok(Self::Counters(snap))
            }
            "span" => Ok(Self::Span {
                name: get_str("name")?,
                label: get_str("label")?,
                parent: value
                    .get("parent")
                    .and_then(Json::as_str)
                    .map(str::to_owned),
                depth: get_u64("depth")?,
                count: get_u64("count")?,
                inclusive_us: get_u64("inclusive_us")?,
                exclusive_us: get_u64("exclusive_us")?,
            }),
            other => Err(format!("unknown record kind `{other}`")),
        }
    }

    /// Parses one JSONL line into a record.
    ///
    /// # Errors
    ///
    /// Returns a description of the JSON or schema error.
    pub fn from_jsonl(line: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(line)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wear::WearSummary;

    fn sample_summary() -> SchemeSummary {
        SchemeSummary {
            scheme: "twl-swp".to_owned(),
            workload: "bday-par".to_owned(),
            logical_writes: 1_000_000,
            device_writes: 1_025_000,
            swaps: 12_500,
            swap_per_write: 0.0125,
            extra_write_ratio: 0.025,
            alarm_rate: 0.75,
            capacity_fraction: 0.93,
            years: 6.2,
            wear_gini: 0.018,
            completed: true,
        }
    }

    #[test]
    fn summary_roundtrips() {
        let record = TelemetryRecord::Summary(sample_summary());
        let back = TelemetryRecord::from_jsonl(&record.to_jsonl()).expect("roundtrip");
        assert_eq!(back, record);
    }

    #[test]
    fn wear_snapshot_roundtrips() {
        let record = TelemetryRecord::Wear {
            scheme: "sr".to_owned(),
            workload: "uniform".to_owned(),
            snapshot: WearSnapshot {
                seq: 3,
                at_writes: 4_000_000,
                summary: WearSummary::from_counts(&[1, 2, 3, 4, 1000]),
            },
        };
        let back = TelemetryRecord::from_jsonl(&record.to_jsonl()).expect("roundtrip");
        assert_eq!(back, record);
    }

    #[test]
    fn counters_roundtrip() {
        let record = TelemetryRecord::Counters(MetricsSnapshot {
            counters: vec![("twl.core.writes".to_owned(), u64::MAX)],
            gauges: vec![("q.depth".to_owned(), -5)],
            histograms: vec![crate::metrics::HistogramSnapshot {
                name: "lat".to_owned(),
                count: 10,
                sum: 1000,
                max: 400,
                buckets: vec![0, 3, 0, 7],
            }],
        });
        let back = TelemetryRecord::from_jsonl(&record.to_jsonl()).expect("roundtrip");
        assert_eq!(back, record);
    }

    #[test]
    fn counters_without_buckets_still_decode() {
        // A pre-bucket trace line (PR-1 era) keeps parsing; buckets just
        // come back empty.
        let line = r#"{"counters":{},"gauges":{},"histograms":{"lat":{"count":2,"max":9,"sum":12}},"kind":"counters","schema":"twl-telemetry/v1"}"#;
        let TelemetryRecord::Counters(snap) =
            TelemetryRecord::from_jsonl(line).expect("old line parses")
        else {
            panic!("wrong kind");
        };
        assert_eq!(snap.histograms[0].count, 2);
        assert!(snap.histograms[0].buckets.is_empty());
        assert_eq!(snap.histograms[0].quantile(0.9), 0.0);
    }

    #[test]
    fn span_roundtrips_with_and_without_parent() {
        let root = TelemetryRecord::Span {
            name: "job".to_owned(),
            label: "job-3".to_owned(),
            parent: None,
            depth: 0,
            count: 1,
            inclusive_us: 1500,
            exclusive_us: 400,
        };
        let child = TelemetryRecord::Span {
            name: "drive".to_owned(),
            label: "TWL_swp".to_owned(),
            parent: Some("job".to_owned()),
            depth: 1,
            count: 64,
            inclusive_us: 1100,
            exclusive_us: 1100,
        };
        for record in [root, child] {
            let line = record.to_jsonl();
            let back = TelemetryRecord::from_jsonl(&line).expect("roundtrip");
            assert_eq!(back, record);
        }
    }

    #[test]
    fn degradation_point_roundtrips() {
        let record = TelemetryRecord::Degradation {
            scheme: "TWL_swp".to_owned(),
            workload: "repeat".to_owned(),
            at_logical_writes: 5_000_000,
            at_device_writes: 5_100_000,
            corrected_groups: 42,
            retired_pages: 3,
            spares_remaining: 13,
            capacity_fraction: 0.981,
        };
        let back = TelemetryRecord::from_jsonl(&record.to_jsonl()).expect("roundtrip");
        assert_eq!(back, record);
    }

    #[test]
    fn alien_schema_is_rejected() {
        let line =
            r#"{"schema":"twl-telemetry/v999","kind":"alarm","scheme":"x","window":1,"share":0.5}"#;
        assert!(TelemetryRecord::from_jsonl(line).is_err());
    }

    #[test]
    fn every_record_carries_schema_and_kind() {
        let record = TelemetryRecord::RunStart {
            tool: "fig8_lifetime".to_owned(),
            pages: 65536,
            mean_endurance: 100_000_000,
            seed: 42,
        };
        let json = record.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some(crate::SCHEMA_VERSION)
        );
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("run_start"));
    }
}
