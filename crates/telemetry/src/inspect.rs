//! Trace inspection: load a JSONL trace, render per-scheme tables, and
//! compare two traces for wear-out regressions.
//!
//! This is the library half of the `twl-stats` binary — kept out of the
//! binary so the table and diff logic is unit-testable.

use std::collections::BTreeMap;
use std::path::Path;

use crate::record::{SchemeSummary, TelemetryRecord};
use crate::wear::WearSnapshot;

/// A loaded trace: the parsed records plus a count of skipped lines.
#[derive(Debug, Default)]
pub struct Trace {
    /// Records in file order.
    pub records: Vec<TelemetryRecord>,
    /// Lines that failed to parse (tolerated, but reported).
    pub skipped: usize,
}

impl Trace {
    /// Parses JSONL text; unparseable lines are counted, not fatal.
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let mut trace = Self::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match TelemetryRecord::from_jsonl(line) {
                Ok(record) => trace.records.push(record),
                Err(_) => trace.skipped += 1,
            }
        }
        trace
    }

    /// Loads a trace file.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be read.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::parse(&std::fs::read_to_string(path)?))
    }

    /// The run header, if the trace carries one.
    #[must_use]
    pub fn run_start(&self) -> Option<(&str, u64, u64, u64)> {
        self.records.iter().find_map(|r| match r {
            TelemetryRecord::RunStart {
                tool,
                pages,
                mean_endurance,
                seed,
            } => Some((tool.as_str(), *pages, *mean_endurance, *seed)),
            _ => None,
        })
    }

    /// All scheme summaries in file order.
    pub fn summaries(&self) -> impl Iterator<Item = &SchemeSummary> {
        self.records.iter().filter_map(|r| match r {
            TelemetryRecord::Summary(s) => Some(s),
            _ => None,
        })
    }

    /// The last wear snapshot recorded for a (scheme, workload) cell.
    #[must_use]
    pub fn final_wear(&self, scheme: &str, workload: &str) -> Option<&WearSnapshot> {
        self.records.iter().rev().find_map(|r| match r {
            TelemetryRecord::Wear {
                scheme: s,
                workload: w,
                snapshot,
            } if s == scheme && w == workload => Some(snapshot),
            _ => None,
        })
    }

    /// Degradation points folded per (scheme, workload) cell in
    /// first-appearance order: the point count plus the last point's
    /// state — how far each cell degraded by the end of its run.
    #[must_use]
    pub fn degradation_cells(&self) -> Vec<DegradationCell> {
        let mut cells: Vec<DegradationCell> = Vec::new();
        for r in &self.records {
            let TelemetryRecord::Degradation {
                scheme,
                workload,
                at_device_writes,
                corrected_groups,
                retired_pages,
                spares_remaining,
                capacity_fraction,
                ..
            } = r
            else {
                continue;
            };
            match cells
                .iter_mut()
                .find(|c| &c.scheme == scheme && &c.workload == workload)
            {
                Some(cell) => {
                    cell.points += 1;
                    cell.at_device_writes = *at_device_writes;
                    cell.corrected_groups = *corrected_groups;
                    cell.retired_pages = *retired_pages;
                    cell.spares_remaining = *spares_remaining;
                    cell.capacity_fraction = *capacity_fraction;
                }
                None => cells.push(DegradationCell {
                    scheme: scheme.clone(),
                    workload: workload.clone(),
                    points: 1,
                    at_device_writes: *at_device_writes,
                    corrected_groups: *corrected_groups,
                    retired_pages: *retired_pages,
                    spares_remaining: *spares_remaining,
                    capacity_fraction: *capacity_fraction,
                }),
            }
        }
        cells
    }

    /// Alarm records counted per scheme.
    #[must_use]
    pub fn alarms_by_scheme(&self) -> BTreeMap<&str, u64> {
        let mut out = BTreeMap::new();
        for r in &self.records {
            if let TelemetryRecord::Alarm { scheme, .. } = r {
                *out.entry(scheme.as_str()).or_insert(0) += 1;
            }
        }
        out
    }

    /// The last metrics-registry dump in the trace, if any.
    #[must_use]
    pub fn final_counters(&self) -> Option<&crate::MetricsSnapshot> {
        self.records.iter().rev().find_map(|r| match r {
            TelemetryRecord::Counters(snap) => Some(snap),
            _ => None,
        })
    }

    /// Folds every `span` record into a self-time profile: one row per
    /// (phase name, label), ordered by total exclusive time descending
    /// so the hottest phase is on top.
    #[must_use]
    pub fn span_profile(&self) -> Vec<SpanProfileRow> {
        let mut rows: Vec<SpanProfileRow> = Vec::new();
        for r in &self.records {
            let TelemetryRecord::Span {
                name,
                label,
                count,
                inclusive_us,
                exclusive_us,
                ..
            } = r
            else {
                continue;
            };
            match rows
                .iter_mut()
                .find(|row| &row.name == name && &row.label == label)
            {
                Some(row) => {
                    row.spans += 1;
                    row.count += count;
                    row.inclusive_us += inclusive_us;
                    row.exclusive_us += exclusive_us;
                }
                None => rows.push(SpanProfileRow {
                    name: name.clone(),
                    label: label.clone(),
                    spans: 1,
                    count: *count,
                    inclusive_us: *inclusive_us,
                    exclusive_us: *exclusive_us,
                }),
            }
        }
        rows.sort_by(|a, b| {
            b.exclusive_us
                .cmp(&a.exclusive_us)
                .then_with(|| a.name.cmp(&b.name))
                .then_with(|| a.label.cmp(&b.label))
        });
        rows
    }
}

/// One aggregated row of a span profile (see [`Trace::span_profile`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanProfileRow {
    /// Phase name.
    pub name: String,
    /// Grouping label (scheme, workload, job id; may be empty).
    pub label: String,
    /// Number of `span` records folded into the row.
    pub spans: u64,
    /// Total timed sections (≥ `spans`; aggregates fold many).
    pub count: u64,
    /// Total wall-clock microseconds, children included.
    pub inclusive_us: u64,
    /// Total self-time microseconds, children excluded.
    pub exclusive_us: u64,
}

/// One (scheme, workload) cell's degradation state, folded from its
/// `degradation_point` records (see [`Trace::degradation_cells`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationCell {
    /// Scheme of the cell.
    pub scheme: String,
    /// Workload or attack of the cell.
    pub workload: String,
    /// Number of degradation points recorded (≈ retirements observed).
    pub points: u64,
    /// Device writes at the last point.
    pub at_device_writes: u64,
    /// Cell-group faults corrected by the last point.
    pub corrected_groups: u64,
    /// Pages retired by the last point.
    pub retired_pages: u64,
    /// Spares still available at the last point.
    pub spares_remaining: u64,
    /// Physical capacity fraction remaining at the last point.
    pub capacity_fraction: f64,
}

fn render_columns(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders the per-scheme summary table: swap/write ratio, extra-write
/// percentage, alarm rate, lifetime, and wear percentiles (joined from
/// the cell's final wear snapshot when present).
#[must_use]
pub fn render_summary_table(trace: &Trace) -> String {
    let mut out = String::new();
    if let Some((tool, pages, endurance, seed)) = trace.run_start() {
        out.push_str(&format!(
            "trace: tool={tool} pages={pages} mean_endurance={endurance} seed={seed}\n\n"
        ));
    }
    let rows: Vec<Vec<String>> = trace
        .summaries()
        .map(|s| {
            let (p50, p99, max) = trace.final_wear(&s.scheme, &s.workload).map_or(
                (String::from("-"), String::from("-"), String::from("-")),
                |w| {
                    (
                        w.summary.p50.to_string(),
                        w.summary.p99.to_string(),
                        w.summary.max.to_string(),
                    )
                },
            );
            vec![
                s.scheme.clone(),
                s.workload.clone(),
                format!("{:.5}", s.swap_per_write),
                format!("{:.2}%", s.extra_write_ratio * 100.0),
                format!("{:.3}", s.alarm_rate),
                format!("{:.2}", s.years),
                format!("{:.4}", s.wear_gini),
                p50,
                p99,
                max,
                if s.completed { "yes" } else { "budget" }.to_owned(),
            ]
        })
        .collect();
    let degradation = trace.degradation_cells();
    if rows.is_empty() && degradation.is_empty() {
        out.push_str("no scheme_summary records in trace\n");
    } else if !rows.is_empty() {
        out.push_str(&render_columns(
            &[
                "scheme", "workload", "swap/wr", "extra-wr", "alarm", "years", "gini", "wear-p50",
                "wear-p99", "wear-max", "wearout",
            ],
            &rows,
        ));
    }
    if !degradation.is_empty() {
        if !rows.is_empty() {
            out.push('\n');
        }
        out.push_str("degradation (final point per cell):\n");
        let deg_rows: Vec<Vec<String>> = degradation
            .iter()
            .map(|c| {
                vec![
                    c.scheme.clone(),
                    c.workload.clone(),
                    c.points.to_string(),
                    c.at_device_writes.to_string(),
                    c.corrected_groups.to_string(),
                    c.retired_pages.to_string(),
                    c.spares_remaining.to_string(),
                    format!("{:.1}%", c.capacity_fraction * 100.0),
                ]
            })
            .collect();
        out.push_str(&render_columns(
            &[
                "scheme",
                "workload",
                "points",
                "dev-writes",
                "corrected",
                "retired",
                "spares",
                "capacity",
            ],
            &deg_rows,
        ));
    }
    if let Some(snap) = trace.final_counters() {
        if !snap.histograms.is_empty() {
            if !rows.is_empty() || !degradation.is_empty() {
                out.push('\n');
            }
            out.push_str("metrics histograms (final dump):\n");
            let hist_rows: Vec<Vec<String>> = snap
                .histograms
                .iter()
                .map(|h| {
                    vec![
                        h.name.clone(),
                        h.count.to_string(),
                        format!("{:.1}", h.mean()),
                        format!("{:.1}", h.quantile(0.50)),
                        format!("{:.1}", h.quantile(0.90)),
                        format!("{:.1}", h.quantile(0.99)),
                        h.max.to_string(),
                    ]
                })
                .collect();
            out.push_str(&render_columns(
                &["histogram", "count", "mean", "p50", "p90", "p99", "max"],
                &hist_rows,
            ));
        }
    }
    if trace.skipped > 0 {
        out.push_str(&format!(
            "\n({} unparseable lines skipped)\n",
            trace.skipped
        ));
    }
    out
}

/// Renders [`Trace::span_profile`] as a table: per (phase, label) call
/// counts, inclusive/exclusive totals, and each row's share of the
/// trace's total self-time.
#[must_use]
pub fn render_span_table(trace: &Trace) -> String {
    let profile = trace.span_profile();
    if profile.is_empty() {
        return "no span records in trace\n".to_owned();
    }
    let total_exclusive: u64 = profile.iter().map(|r| r.exclusive_us).sum();
    let rows: Vec<Vec<String>> = profile
        .iter()
        .map(|r| {
            let share = if total_exclusive == 0 {
                0.0
            } else {
                r.exclusive_us as f64 / total_exclusive as f64 * 100.0
            };
            vec![
                r.name.clone(),
                if r.label.is_empty() {
                    "-".to_owned()
                } else {
                    r.label.clone()
                },
                r.spans.to_string(),
                r.count.to_string(),
                format!("{:.3}", r.inclusive_us as f64 / 1000.0),
                format!("{:.3}", r.exclusive_us as f64 / 1000.0),
                format!("{share:.1}%"),
            ]
        })
        .collect();
    let mut out = render_columns(
        &[
            "phase", "label", "spans", "count", "incl-ms", "excl-ms", "self",
        ],
        &rows,
    );
    out.push_str(&format!(
        "total self-time: {:.3} ms over {} phase rows\n",
        total_exclusive as f64 / 1000.0,
        profile.len()
    ));
    out
}

/// The JSON twin of [`render_span_table`]: one document with a
/// `spans` array (name, label, spans, count, inclusive_us,
/// exclusive_us, self_fraction) plus `total_exclusive_us`.
#[must_use]
pub fn render_span_json(trace: &Trace) -> String {
    use crate::json::{int, num, str, Json};
    let profile = trace.span_profile();
    let total_exclusive: u64 = profile.iter().map(|r| r.exclusive_us).sum();
    let spans: Vec<Json> = profile
        .iter()
        .map(|r| {
            let share = if total_exclusive == 0 {
                0.0
            } else {
                r.exclusive_us as f64 / total_exclusive as f64
            };
            Json::obj([
                ("name", str(&r.name)),
                ("label", str(&r.label)),
                ("spans", int(r.spans)),
                ("count", int(r.count)),
                ("inclusive_us", int(r.inclusive_us)),
                ("exclusive_us", int(r.exclusive_us)),
                ("self_fraction", num(share)),
            ])
        })
        .collect();
    Json::obj([
        ("schema", str(crate::SCHEMA_VERSION)),
        ("spans", Json::Arr(spans)),
        ("total_exclusive_us", int(total_exclusive)),
        (
            "skipped",
            int(u64::try_from(trace.skipped).unwrap_or(u64::MAX)),
        ),
    ])
    .to_compact()
}

/// Renders the same per-scheme summary as [`render_summary_table`], but
/// as one machine-readable JSON document, so `twl-ctl` and CI can
/// assert on inspector output without screen-scraping tables.
///
/// Shape: `{"schema", "run"?, "summaries": [...], "degradation": [...],
/// "alarms": {scheme: count}, "skipped"}`. Each summary object carries
/// every [`SchemeSummary`] field plus `wear_p50`/`wear_p99`/`wear_max`
/// joined from the cell's final wear snapshot when present.
#[must_use]
pub fn render_summary_json(trace: &Trace) -> String {
    use crate::json::{int, num, str, Json};
    let mut root: BTreeMap<String, Json> = BTreeMap::new();
    root.insert(
        "schema".to_owned(),
        Json::Str(crate::SCHEMA_VERSION.to_owned()),
    );
    if let Some((tool, pages, endurance, seed)) = trace.run_start() {
        root.insert(
            "run".to_owned(),
            Json::obj([
                ("tool", str(tool)),
                ("pages", int(pages)),
                ("mean_endurance", int(endurance)),
                ("seed", int(seed)),
            ]),
        );
    }
    let summaries: Vec<Json> = trace
        .summaries()
        .map(|s| {
            let mut obj = match TelemetryRecord::Summary(s.clone()).to_json() {
                Json::Obj(map) => map,
                _ => unreachable!("summary records serialize to objects"),
            };
            // The table form joins wear percentiles; the JSON form does
            // the same so both views carry identical information.
            if let Some(w) = trace.final_wear(&s.scheme, &s.workload) {
                obj.insert("wear_p50".to_owned(), int(w.summary.p50));
                obj.insert("wear_p99".to_owned(), int(w.summary.p99));
                obj.insert("wear_max".to_owned(), int(w.summary.max));
            }
            // The `schema`/`kind` discriminators belong to the record
            // framing, not to a summary row inside this document.
            obj.remove("schema");
            obj.remove("kind");
            Json::Obj(obj)
        })
        .collect();
    root.insert("summaries".to_owned(), Json::Arr(summaries));
    let degradation: Vec<Json> = trace
        .degradation_cells()
        .iter()
        .map(|c| {
            Json::obj([
                ("scheme", str(&c.scheme)),
                ("workload", str(&c.workload)),
                ("points", int(c.points)),
                ("at_device_writes", int(c.at_device_writes)),
                ("corrected_groups", int(c.corrected_groups)),
                ("retired_pages", int(c.retired_pages)),
                ("spares_remaining", int(c.spares_remaining)),
                ("capacity_fraction", num(c.capacity_fraction)),
            ])
        })
        .collect();
    root.insert("degradation".to_owned(), Json::Arr(degradation));
    let alarms: BTreeMap<String, Json> = trace
        .alarms_by_scheme()
        .into_iter()
        .map(|(scheme, count)| (scheme.to_owned(), int(count)))
        .collect();
    root.insert("alarms".to_owned(), Json::Obj(alarms));
    let histograms: Vec<Json> = trace
        .final_counters()
        .map(|snap| {
            snap.histograms
                .iter()
                .map(|h| {
                    Json::obj([
                        ("name", str(&h.name)),
                        ("count", int(h.count)),
                        ("sum", int(h.sum)),
                        ("max", int(h.max)),
                        ("mean", num(h.mean())),
                        ("p50", num(h.quantile(0.50))),
                        ("p90", num(h.quantile(0.90))),
                        ("p99", num(h.quantile(0.99))),
                    ])
                })
                .collect()
        })
        .unwrap_or_default();
    root.insert("histograms".to_owned(), Json::Arr(histograms));
    root.insert(
        "skipped".to_owned(),
        int(u64::try_from(trace.skipped).unwrap_or(u64::MAX)),
    );
    Json::Obj(root).to_compact()
}

/// One detected regression between two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Scheme of the regressed cell.
    pub scheme: String,
    /// Workload of the regressed cell.
    pub workload: String,
    /// Which quantity moved (`years`, `extra_write_ratio`, `wear_gini`).
    pub metric: &'static str,
    /// Value in the baseline trace.
    pub old: f64,
    /// Value in the new trace.
    pub new: f64,
}

impl Regression {
    /// Human-readable one-liner.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "{}/{}: {} regressed {:.4} -> {:.4}",
            self.scheme, self.workload, self.metric, self.old, self.new
        )
    }
}

/// Compares matching (scheme, workload) cells of two traces and reports
/// wear-out regressions: lifetime shrinking, write amplification or wear
/// inequality growing, each by more than `tolerance` (a fraction, e.g.
/// `0.05` = 5%).
#[must_use]
pub fn diff_traces(old: &Trace, new: &Trace, tolerance: f64) -> Vec<Regression> {
    let old_cells: BTreeMap<(String, String), &SchemeSummary> = old
        .summaries()
        .map(|s| ((s.scheme.clone(), s.workload.clone()), s))
        .collect();
    let mut regressions = Vec::new();
    for s in new.summaries() {
        let Some(base) = old_cells.get(&(s.scheme.clone(), s.workload.clone())) else {
            continue;
        };
        // Lifetime: lower is worse.
        if s.years < base.years * (1.0 - tolerance) {
            regressions.push(Regression {
                scheme: s.scheme.clone(),
                workload: s.workload.clone(),
                metric: "years",
                old: base.years,
                new: s.years,
            });
        }
        // Write amplification: higher is worse. Absolute floor avoids
        // flagging noise around zero.
        if s.extra_write_ratio > base.extra_write_ratio * (1.0 + tolerance)
            && s.extra_write_ratio - base.extra_write_ratio > 1e-6
        {
            regressions.push(Regression {
                scheme: s.scheme.clone(),
                workload: s.workload.clone(),
                metric: "extra_write_ratio",
                old: base.extra_write_ratio,
                new: s.extra_write_ratio,
            });
        }
        // Wear inequality: higher is worse.
        if s.wear_gini > base.wear_gini * (1.0 + tolerance) && s.wear_gini - base.wear_gini > 1e-6 {
            regressions.push(Regression {
                scheme: s.scheme.clone(),
                workload: s.workload.clone(),
                metric: "wear_gini",
                old: base.wear_gini,
                new: s.wear_gini,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wear::WearSummary;

    fn summary(scheme: &str, years: f64, extra: f64, gini: f64) -> TelemetryRecord {
        TelemetryRecord::Summary(SchemeSummary {
            scheme: scheme.to_owned(),
            workload: "uniform".to_owned(),
            logical_writes: 1000,
            device_writes: 1100,
            swaps: 50,
            swap_per_write: 0.05,
            extra_write_ratio: extra,
            alarm_rate: 0.0,
            capacity_fraction: 0.9,
            years,
            wear_gini: gini,
            completed: true,
        })
    }

    fn trace_of(records: Vec<TelemetryRecord>) -> Trace {
        let text: String = records.iter().map(|r| r.to_jsonl() + "\n").collect();
        Trace::parse(&text)
    }

    #[test]
    fn table_joins_summary_with_final_wear() {
        let trace = trace_of(vec![
            TelemetryRecord::RunStart {
                tool: "fig8_lifetime".to_owned(),
                pages: 1024,
                mean_endurance: 1_000_000,
                seed: 7,
            },
            summary("twl-swp", 6.5, 0.025, 0.01),
            TelemetryRecord::Wear {
                scheme: "twl-swp".to_owned(),
                workload: "uniform".to_owned(),
                snapshot: WearSnapshot {
                    seq: 0,
                    at_writes: 1000,
                    summary: WearSummary::from_counts(&[5, 6, 7, 8]),
                },
            },
        ]);
        let table = render_summary_table(&trace);
        assert!(table.contains("twl-swp"), "table:\n{table}");
        assert!(table.contains("2.50%"), "extra-write %:\n{table}");
        assert!(table.contains('8'), "wear max joined:\n{table}");
        assert!(table.contains("fig8_lifetime"), "header:\n{table}");
    }

    #[test]
    fn degradation_points_fold_into_a_final_state_table() {
        let point = |at: u64, retired: u64, spares: u64| TelemetryRecord::Degradation {
            scheme: "NOWL".to_owned(),
            workload: "repeat".to_owned(),
            at_logical_writes: at,
            at_device_writes: at + retired,
            corrected_groups: retired * 3,
            retired_pages: retired,
            spares_remaining: spares,
            capacity_fraction: 1.0 - retired as f64 / 100.0,
        };
        let trace = trace_of(vec![point(1_000, 1, 3), point(2_000, 4, 0)]);
        let cells = trace.degradation_cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].points, 2);
        assert_eq!(cells[0].retired_pages, 4);
        assert_eq!(cells[0].spares_remaining, 0);
        let table = render_summary_table(&trace);
        assert!(table.contains("degradation"), "table:\n{table}");
        assert!(table.contains("96.0%"), "capacity:\n{table}");
        assert!(
            !table.contains("no scheme_summary"),
            "degradation-only traces are not empty:\n{table}"
        );
    }

    #[test]
    fn json_summary_is_parseable_and_joins_wear() {
        use crate::json::Json;
        use crate::wear::WearSummary;
        let trace = trace_of(vec![
            TelemetryRecord::RunStart {
                tool: "twl-serviced".to_owned(),
                pages: 128,
                mean_endurance: 2_000,
                seed: 8,
            },
            summary("twl-swp", 6.5, 0.025, 0.01),
            TelemetryRecord::Wear {
                scheme: "twl-swp".to_owned(),
                workload: "uniform".to_owned(),
                snapshot: WearSnapshot {
                    seq: 0,
                    at_writes: 1000,
                    summary: WearSummary::from_counts(&[5, 6, 7, 8]),
                },
            },
        ]);
        let doc = Json::parse(&render_summary_json(&trace)).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("twl-telemetry/v1")
        );
        assert_eq!(
            doc.get("run")
                .and_then(|r| r.get("tool"))
                .and_then(Json::as_str),
            Some("twl-serviced")
        );
        let summaries = doc.get("summaries").and_then(Json::as_arr).unwrap();
        assert_eq!(summaries.len(), 1);
        assert_eq!(
            summaries[0].get("scheme").and_then(Json::as_str),
            Some("twl-swp")
        );
        assert_eq!(summaries[0].get("wear_max").and_then(Json::as_u64), Some(8));
        assert_eq!(summaries[0].get("years").and_then(Json::as_f64), Some(6.5));
        assert!(
            summaries[0].get("kind").is_none(),
            "framing fields stripped"
        );
        assert_eq!(doc.get("skipped").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn diff_flags_lifetime_drop_only_past_tolerance() {
        let old = trace_of(vec![summary("a", 10.0, 0.02, 0.01)]);
        let ok = trace_of(vec![summary("a", 9.8, 0.02, 0.01)]);
        let bad = trace_of(vec![summary("a", 8.0, 0.02, 0.01)]);
        assert!(diff_traces(&old, &ok, 0.05).is_empty());
        let regs = diff_traces(&old, &bad, 0.05);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "years");
    }

    #[test]
    fn diff_flags_amplification_and_gini_growth() {
        let old = trace_of(vec![summary("a", 10.0, 0.02, 0.01)]);
        let bad = trace_of(vec![summary("a", 10.0, 0.04, 0.03)]);
        let metrics: Vec<&str> = diff_traces(&old, &bad, 0.05)
            .into_iter()
            .map(|r| r.metric)
            .collect();
        assert_eq!(metrics, vec!["extra_write_ratio", "wear_gini"]);
    }

    #[test]
    fn diff_ignores_cells_missing_from_baseline() {
        let old = trace_of(vec![summary("a", 10.0, 0.02, 0.01)]);
        let new = trace_of(vec![summary("b", 1.0, 0.5, 0.9)]);
        assert!(diff_traces(&old, &new, 0.05).is_empty());
    }

    fn span(
        name: &str,
        label: &str,
        parent: Option<&str>,
        incl: u64,
        excl: u64,
    ) -> TelemetryRecord {
        TelemetryRecord::Span {
            name: name.to_owned(),
            label: label.to_owned(),
            parent: parent.map(str::to_owned),
            depth: u64::from(parent.is_some()),
            count: 1,
            inclusive_us: incl,
            exclusive_us: excl,
        }
    }

    #[test]
    fn span_profile_folds_by_phase_and_label() {
        let trace = trace_of(vec![
            span("drive", "TWL_swp", Some("cell"), 900, 900),
            span("cell", "TWL_swp", None, 1000, 100),
            span("drive", "NOWL", Some("cell"), 400, 400),
            span("cell", "NOWL", None, 500, 100),
            span("drive", "TWL_swp", Some("cell"), 300, 300),
            span("cell", "TWL_swp", None, 350, 50),
        ]);
        let profile = trace.span_profile();
        assert_eq!(profile.len(), 4, "{profile:?}");
        // Hottest self-time first: TWL_swp drive (900+300).
        assert_eq!(profile[0].name, "drive");
        assert_eq!(profile[0].label, "TWL_swp");
        assert_eq!(profile[0].spans, 2);
        assert_eq!(profile[0].inclusive_us, 1200);
        assert_eq!(profile[0].exclusive_us, 1200);

        let table = render_span_table(&trace);
        assert!(table.contains("phase"), "table:\n{table}");
        assert!(table.contains("TWL_swp"), "table:\n{table}");
        assert!(table.contains("total self-time"), "table:\n{table}");

        use crate::json::Json;
        let doc = Json::parse(&render_span_json(&trace)).expect("valid JSON");
        let spans = doc.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans.len(), 4);
        assert_eq!(
            doc.get("total_exclusive_us").and_then(Json::as_u64),
            Some(900 + 300 + 400 + 100 + 100 + 50)
        );
    }

    #[test]
    fn empty_span_profile_renders_a_note() {
        let trace = trace_of(vec![summary("a", 1.0, 0.0, 0.0)]);
        assert_eq!(render_span_table(&trace), "no span records in trace\n");
    }

    #[test]
    fn summary_surfaces_histogram_percentiles() {
        use crate::metrics::HistogramSnapshot;
        let trace = trace_of(vec![
            summary("a", 1.0, 0.0, 0.0),
            TelemetryRecord::Counters(crate::MetricsSnapshot {
                counters: vec![],
                gauges: vec![],
                histograms: vec![HistogramSnapshot {
                    name: "twl.job.wall_ms".to_owned(),
                    count: 4,
                    sum: 40,
                    max: 16,
                    buckets: vec![0, 0, 1, 2, 1],
                }],
            }),
        ]);
        let table = render_summary_table(&trace);
        assert!(table.contains("metrics histograms"), "table:\n{table}");
        assert!(table.contains("twl.job.wall_ms"), "table:\n{table}");
        use crate::json::Json;
        let doc = Json::parse(&render_summary_json(&trace)).expect("valid JSON");
        let hists = doc.get("histograms").and_then(Json::as_arr).unwrap();
        assert_eq!(hists.len(), 1);
        let p99 = hists[0].get("p99").and_then(Json::as_f64).unwrap();
        assert!(p99 > 0.0 && p99 <= 16.0, "p99 clamped to max: {p99}");
    }

    #[test]
    fn unparseable_lines_are_counted_not_fatal() {
        let trace = Trace::parse("not json\n\n{\"schema\":\"bogus\"}\n");
        assert_eq!(trace.records.len(), 0);
        assert_eq!(trace.skipped, 2);
    }
}
