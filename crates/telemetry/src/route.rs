//! Scope-routed trace sinks: fan one global pipeline out to per-job
//! trace files.
//!
//! The emission pipeline ([`crate::emit`]) is process-global, but a
//! long-lived server (the `twl-service` daemon) runs many jobs
//! concurrently on different worker threads and wants each job's
//! records in its own file. The bridge is a *thread-local scope label*:
//! a worker calls [`set_scope`] (or holds a [`ScopeGuard`]) around a
//! job, and a [`RoutingJsonlSink`] installed once at startup routes
//! every record to `dir/<scope>.trace.jsonl` based on the label of the
//! thread that emitted it. Records emitted with no scope set are
//! dropped by the routing sink (other installed sinks still see them).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

use crate::record::TelemetryRecord;
use crate::sink::Sink;

thread_local! {
    static SCOPE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Labels every record the *current thread* emits until [`clear_scope`]
/// (or the next `set_scope`). Prefer [`ScopeGuard`] so panics cannot
/// leak a stale label.
pub fn set_scope(label: impl Into<String>) {
    let label = label.into();
    SCOPE.with(|s| *s.borrow_mut() = Some(label));
}

/// Removes the current thread's scope label.
pub fn clear_scope() {
    SCOPE.with(|s| *s.borrow_mut() = None);
}

/// The current thread's scope label, if any.
#[must_use]
pub fn current_scope() -> Option<String> {
    SCOPE.with(|s| s.borrow().clone())
}

/// RAII scope label: sets on construction, clears on drop.
///
/// # Examples
///
/// ```
/// let _guard = twl_telemetry::ScopeGuard::new("job-7");
/// assert_eq!(twl_telemetry::current_scope().as_deref(), Some("job-7"));
/// drop(_guard);
/// assert_eq!(twl_telemetry::current_scope(), None);
/// ```
#[derive(Debug)]
pub struct ScopeGuard(());

impl ScopeGuard {
    /// Sets the current thread's scope to `label`.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        set_scope(label);
        Self(())
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        clear_scope();
    }
}

/// Replaces any character that could escape the routing directory (or
/// upset a filesystem) so a scope label is always a safe file stem.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// A sink that routes each record to `dir/<scope>.trace.jsonl`, where
/// `<scope>` is the emitting thread's label (see [`set_scope`]).
/// Unscoped records are dropped. Files are created lazily on the first
/// record of each scope and appended to afterwards, so a resumed job
/// keeps extending its original trace.
#[derive(Debug)]
pub struct RoutingJsonlSink {
    dir: PathBuf,
    writers: HashMap<String, BufWriter<File>>,
}

impl RoutingJsonlSink {
    /// Creates the routing sink over `dir`, creating the directory.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the directory cannot be created.
    pub fn create(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            writers: HashMap::new(),
        })
    }

    /// The trace-file path a scope label routes to.
    #[must_use]
    pub fn path_for(&self, scope: &str) -> PathBuf {
        self.dir.join(format!("{}.trace.jsonl", sanitize(scope)))
    }
}

impl Sink for RoutingJsonlSink {
    fn record(&mut self, record: &TelemetryRecord) {
        let Some(scope) = current_scope() else {
            return;
        };
        let path = self.path_for(&scope);
        let writer = match self.writers.entry(sanitize(&scope)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                // Append, not truncate: a resumed job continues its file.
                match File::options().create(true).append(true).open(&path) {
                    Ok(f) => e.insert(BufWriter::new(f)),
                    // A failed trace file must not kill the daemon.
                    Err(_) => return,
                }
            }
        };
        let _ = writeln!(writer, "{}", record.to_jsonl());
    }

    fn flush(&mut self) -> std::io::Result<()> {
        let mut first_err = None;
        for w in self.writers.values_mut() {
            if let Err(e) = w.flush() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alarm(window: u64) -> TelemetryRecord {
        TelemetryRecord::Alarm {
            scheme: "twl".to_owned(),
            window,
            share: 0.5,
        }
    }

    #[test]
    fn routes_by_thread_scope_and_drops_unscoped() {
        let dir = std::env::temp_dir().join("twl-route-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut sink = RoutingJsonlSink::create(&dir).expect("create dir");

        sink.record(&alarm(0)); // no scope: dropped
        {
            let _guard = ScopeGuard::new("job-1");
            sink.record(&alarm(1));
            sink.record(&alarm(2));
        }
        {
            let _guard = ScopeGuard::new("job-2");
            sink.record(&alarm(3));
        }
        sink.flush().expect("flush");

        let read = |scope: &str| std::fs::read_to_string(sink.path_for(scope)).unwrap();
        assert_eq!(read("job-1").lines().count(), 2);
        assert_eq!(read("job-2").lines().count(), 1);
        assert!(!sink.path_for("unscoped").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_keeps_resumed_traces() {
        let dir = std::env::temp_dir().join("twl-route-append-test");
        let _ = std::fs::remove_dir_all(&dir);
        let _guard = ScopeGuard::new("job-9");
        {
            let mut sink = RoutingJsonlSink::create(&dir).expect("create dir");
            sink.record(&alarm(1));
            sink.flush().unwrap();
        }
        // A second sink (a restarted daemon) appends to the same file.
        let mut sink = RoutingJsonlSink::create(&dir).expect("recreate dir");
        sink.record(&alarm(2));
        sink.flush().unwrap();
        let text = std::fs::read_to_string(sink.path_for("job-9")).unwrap();
        assert_eq!(text.lines().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scope_labels_are_sanitized() {
        let dir = std::env::temp_dir().join("twl-route-sanitize-test");
        let _ = std::fs::remove_dir_all(&dir);
        let sink = RoutingJsonlSink::create(&dir).expect("create dir");
        let path = sink.path_for("../evil/job 1");
        assert!(path.starts_with(&dir), "{}", path.display());
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with(".._evil_job_1"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
