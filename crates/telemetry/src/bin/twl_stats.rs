//! `twl-stats`: inspect twl-telemetry JSONL traces.
//!
//! ```text
//! twl-stats <trace.jsonl> [--format table|json]   per-scheme summary
//! twl-stats --spans <trace.jsonl>                 span self-time profile
//!           [--format table|json]
//! twl-stats --diff <old.jsonl> <new.jsonl>        wear-out regression check
//!           [--tolerance 0.05]
//! ```
//!
//! `--format json` emits one machine-readable JSON document (see
//! [`render_summary_json`]) so `twl-ctl` and CI can assert on inspector
//! output without screen-scraping tables. `--spans` folds the trace's
//! `span` records into a per-phase self-time profile (see
//! [`render_span_table`]). `--diff` exits non-zero when the new trace
//! regresses lifetime, write amplification, or wear inequality beyond
//! the tolerance, so it can gate CI. A missing, unreadable, or
//! non-trace input exits non-zero with an error on stderr.

use std::process::ExitCode;

use twl_telemetry::{
    diff_traces, render_span_json, render_span_table, render_summary_json, render_summary_table,
    Trace,
};

const USAGE: &str = "usage:
  twl-stats <trace.jsonl> [--format table|json]
  twl-stats --spans <trace.jsonl> [--format table|json]
  twl-stats --diff <old.jsonl> <new.jsonl> [--tolerance <fraction>]";

fn load(path: &str) -> Result<Trace, String> {
    let trace = Trace::load(path).map_err(|e| format!("cannot read trace `{path}`: {e}"))?;
    // A file where *nothing* parsed is almost certainly not a trace at
    // all (wrong path, wrong format); an empty report would hide that.
    if trace.records.is_empty() && trace.skipped > 0 {
        return Err(format!(
            "`{path}` contains no twl-telemetry records ({} unparseable lines) — not a trace file?",
            trace.skipped
        ));
    }
    Ok(trace)
}

fn render(trace: &Trace, spans: bool, fmt: &str) -> Result<String, String> {
    match (spans, fmt) {
        (false, "table") => Ok(render_summary_table(trace)),
        (false, "json") => Ok(render_summary_json(trace) + "\n"),
        (true, "table") => Ok(render_span_table(trace)),
        (true, "json") => Ok(render_span_json(trace) + "\n"),
        (_, other) => Err(format!("unknown format `{other}`\n{USAGE}")),
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    // Peel off the `--spans` mode flag wherever it appears; the rest of
    // the grammar is shared with the summary view.
    let spans = args.iter().any(|a| a == "--spans");
    let args: Vec<String> = args.iter().filter(|a| *a != "--spans").cloned().collect();
    match &args[..] {
        [path] if path != "--diff" && !path.starts_with("--") => {
            let trace = load(path)?;
            print!("{}", render(&trace, spans, "table")?);
            Ok(ExitCode::SUCCESS)
        }
        // `--format` is accepted on either side of the path.
        [path, fmt_flag, fmt] | [fmt_flag, fmt, path]
            if fmt_flag == "--format" && !path.starts_with("--") =>
        {
            let trace = load(path)?;
            print!("{}", render(&trace, spans, fmt)?);
            Ok(ExitCode::SUCCESS)
        }
        [flag, rest @ ..] if flag == "--diff" => {
            let (old_path, new_path, tolerance) = match rest {
                [old, new] => (old, new, 0.05),
                [old, new, tol_flag, tol] if tol_flag == "--tolerance" => (
                    old,
                    new,
                    tol.parse::<f64>()
                        .map_err(|e| format!("bad tolerance `{tol}`: {e}"))?,
                ),
                _ => return Err(USAGE.to_owned()),
            };
            let old = load(old_path)?;
            let new = load(new_path)?;
            let regressions = diff_traces(&old, &new, tolerance);
            if regressions.is_empty() {
                println!(
                    "ok: no wear-out regressions ({} cells checked, tolerance {:.1}%)",
                    new.summaries().count(),
                    tolerance * 100.0
                );
                Ok(ExitCode::SUCCESS)
            } else {
                println!(
                    "{} regression(s) past {:.1}%:",
                    regressions.len(),
                    tolerance * 100.0
                );
                for r in &regressions {
                    println!("  {}", r.describe());
                }
                Ok(ExitCode::FAILURE)
            }
        }
        _ => Err(USAGE.to_owned()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
