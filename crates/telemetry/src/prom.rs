//! Prometheus text-format (v0.0.4) exposition of a metrics snapshot.
//!
//! [`render_exposition`] turns a [`MetricsSnapshot`] into the plain-text
//! page a Prometheus server scrapes: counters and gauges as single
//! samples, histograms as cumulative `_bucket{le="…"}` series plus
//! `_sum`/`_count`. The fixed power-of-two buckets of [`Histogram`]
//! (bucket `i` covers `[2^i, 2^(i+1))`, integer samples only) expose
//! exact upper bounds `le="2^(i+1)-1"`.
//!
//! [`PromWriter`] is the underlying builder, public so callers (the
//! `twl-serviced` `metrics` request) can append extra families — e.g.
//! per-job progress gauges — after the registry dump. [`parse_exposition`]
//! is the matching reader/format-lint used by `twl-top`, `twl-ctl
//! metrics --lint`, and CI.
//!
//! [`Histogram`]: crate::Histogram

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// Maps an internal metric name (dotted, e.g. `twl.service.queue.depth`)
/// to a valid Prometheus metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`, every
/// other character replaced by `_`.
#[must_use]
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the text format: backslash, double quote,
/// and newline.
#[must_use]
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        // The text format spans +Inf/-Inf/NaN literals.
        return if v.is_nan() {
            "NaN".to_owned()
        } else if v > 0.0 {
            "+Inf".to_owned()
        } else {
            "-Inf".to_owned()
        };
    }
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

fn write_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", metric_name(k), escape_label_value(v));
    }
    out.push('}');
}

/// Builds one exposition page; families are emitted in call order, each
/// with its `# TYPE` header line.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty page.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn type_line(&mut self, name: &str, kind: &str) {
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// One unlabeled counter sample.
    pub fn counter(&mut self, name: &str, value: u64) {
        let name = metric_name(name);
        self.type_line(&name, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// A gauge family: one sample per label set (pass one entry with an
    /// empty label slice for a plain gauge).
    pub fn gauge_family(&mut self, name: &str, samples: &[(&[(&str, &str)], f64)]) {
        let name = metric_name(name);
        self.type_line(&name, "gauge");
        for (labels, value) in samples {
            let mut line = name.clone();
            write_labels(&mut line, labels);
            let _ = writeln!(self.out, "{line} {}", fmt_value(*value));
        }
    }

    /// One unlabeled gauge sample.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauge_family(name, &[(&[], value)]);
    }

    /// A histogram family: cumulative `_bucket` series with exact
    /// integer upper bounds, then `_sum` and `_count`.
    pub fn histogram(&mut self, h: &HistogramSnapshot) {
        let name = metric_name(&h.name);
        self.type_line(&name, "histogram");
        let mut cumulative: u64 = 0;
        for (i, &c) in h.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(c);
            // Bucket i holds integer samples in [2^i, 2^(i+1)), so the
            // inclusive upper bound is 2^(i+1)-1 (bucket 0 also holds
            // zeros). u128 keeps the last bucket's bound exact.
            let le = (1u128 << (i + 1)) - 1;
            let _ = writeln!(self.out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(self.out, "{name}_sum {}", h.sum);
        let _ = writeln!(self.out, "{name}_count {}", h.count);
    }

    /// The finished page.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders a whole [`MetricsSnapshot`] (counters, gauges, histograms, in
/// that order, each section name-sorted as the snapshot already is).
#[must_use]
pub fn render_exposition(snap: &MetricsSnapshot) -> String {
    let mut w = PromWriter::new();
    for (name, value) in &snap.counters {
        w.counter(name, *value);
    }
    for (name, value) in &snap.gauges {
        w.gauge(name, *value as f64);
    }
    for h in &snap.histograms {
        w.histogram(h);
    }
    w.finish()
}

/// One parsed sample line of an exposition page.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sample name (for histograms: the `_bucket`/`_sum`/`_count` name).
    pub name: String,
    /// Label pairs in line order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn parse_sample(line: &str, lineno: usize) -> Result<PromSample, String> {
    let err = |what: &str| format!("line {lineno}: {what}: `{line}`");
    let (name_and_labels, value) = line
        .rsplit_once(char::is_whitespace)
        .ok_or_else(|| err("expected `name[{labels}] value`"))?;
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| err("unparseable sample value"))?,
    };
    let (name, labels) = match name_and_labels.split_once('{') {
        None => (name_and_labels.trim().to_owned(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| err("unterminated label set"))?;
            let mut labels = Vec::new();
            let mut chars = body.chars().peekable();
            while chars.peek().is_some() {
                let mut key = String::new();
                for c in chars.by_ref() {
                    if c == '=' {
                        break;
                    }
                    key.push(c);
                }
                if !valid_name(key.trim()) {
                    return Err(err("bad label name"));
                }
                if chars.next() != Some('"') {
                    return Err(err("label value must be quoted"));
                }
                let mut val = String::new();
                let mut closed = false;
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => match chars.next() {
                            Some('\\') => val.push('\\'),
                            Some('"') => val.push('"'),
                            Some('n') => val.push('\n'),
                            _ => return Err(err("bad escape in label value")),
                        },
                        '"' => {
                            closed = true;
                            break;
                        }
                        c => val.push(c),
                    }
                }
                if !closed {
                    return Err(err("unterminated label value"));
                }
                labels.push((key.trim().to_owned(), val));
                if chars.peek() == Some(&',') {
                    chars.next();
                }
            }
            (name.trim().to_owned(), labels)
        }
    };
    if !valid_name(&name) {
        return Err(err("invalid metric name"));
    }
    Ok(PromSample {
        name,
        labels,
        value,
    })
}

/// Parses and lints one exposition page.
///
/// Beyond per-line syntax (names, quoted/escaped label values, numeric
/// sample values), this enforces the histogram contract for every
/// `# TYPE x histogram` family: `x_bucket` series cumulative and
/// non-decreasing, a `+Inf` bucket present and equal to `x_count`, and
/// `x_sum` present.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn parse_exposition(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    let mut histogram_families = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let parts: Vec<&str> = comment.split_whitespace().collect();
            if parts.first() == Some(&"TYPE") {
                if parts.len() != 3
                    || !valid_name(parts[1])
                    || !matches!(
                        parts[2],
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    )
                {
                    return Err(format!("line {lineno}: malformed TYPE line: `{line}`"));
                }
                if parts[2] == "histogram" {
                    histogram_families.push(parts[1].to_owned());
                }
            }
            continue;
        }
        samples.push(parse_sample(line, lineno)?);
    }
    for family in &histogram_families {
        lint_histogram(family, &samples)?;
    }
    Ok(samples)
}

fn lint_histogram(family: &str, samples: &[PromSample]) -> Result<(), String> {
    let bucket_name = format!("{family}_bucket");
    let mut prev: Option<(f64, f64)> = None; // (le, cumulative)
    let mut inf_value = None;
    for s in samples.iter().filter(|s| s.name == bucket_name) {
        let le = s
            .label("le")
            .ok_or_else(|| format!("histogram `{family}`: bucket without `le` label"))?;
        let le = match le {
            "+Inf" => f64::INFINITY,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("histogram `{family}`: unparseable le `{v}`"))?,
        };
        if let Some((prev_le, prev_cum)) = prev {
            if le <= prev_le {
                return Err(format!("histogram `{family}`: le bounds not increasing"));
            }
            if s.value < prev_cum {
                return Err(format!(
                    "histogram `{family}`: cumulative bucket counts decreased at le={le}"
                ));
            }
        }
        if le.is_infinite() {
            inf_value = Some(s.value);
        }
        prev = Some((le, s.value));
    }
    let inf =
        inf_value.ok_or_else(|| format!("histogram `{family}`: missing le=\"+Inf\" bucket"))?;
    let count = samples
        .iter()
        .find(|s| s.name == format!("{family}_count"))
        .ok_or_else(|| format!("histogram `{family}`: missing _count"))?;
    if samples.iter().all(|s| s.name != format!("{family}_sum")) {
        return Err(format!("histogram `{family}`: missing _sum"));
    }
    if (count.value - inf).abs() > f64::EPSILON {
        return Err(format!(
            "histogram `{family}`: _count {} != +Inf bucket {}",
            count.value, inf
        ));
    }
    Ok(())
}

/// Folds parsed samples into `name -> value` for quick assertions,
/// keeping only unlabeled samples (label-bearing families like per-job
/// gauges need [`PromSample`] directly).
#[must_use]
pub fn scalar_samples(samples: &[PromSample]) -> BTreeMap<String, f64> {
    samples
        .iter()
        .filter(|s| s.labels.is_empty())
        .map(|s| (s.name.clone(), s.value))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized_and_labels_escaped() {
        assert_eq!(
            metric_name("twl.service.queue.depth"),
            "twl_service_queue_depth"
        );
        assert_eq!(metric_name("0day"), "_day");
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn label_escaping_roundtrips_through_the_parser() {
        let mut w = PromWriter::new();
        w.gauge_family(
            "twl_job_progress",
            &[(&[("job", "weird\\label\"with\nstuff")], 0.5)],
        );
        let samples = parse_exposition(&w.finish()).expect("lint passes");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].label("job"), Some("weird\\label\"with\nstuff"));
        assert_eq!(samples[0].value, 0.5);
    }

    #[test]
    fn histogram_series_are_cumulative_and_consistent() {
        let h = HistogramSnapshot {
            name: "twl.service.job.wall_ms".to_owned(),
            count: 6,
            sum: 90,
            max: 40,
            buckets: vec![1, 2, 0, 1, 0, 2],
        };
        let mut w = PromWriter::new();
        w.histogram(&h);
        let page = w.finish();
        assert!(page.contains("# TYPE twl_service_job_wall_ms histogram"));
        assert!(page.contains("twl_service_job_wall_ms_bucket{le=\"1\"} 1"));
        assert!(page.contains("twl_service_job_wall_ms_bucket{le=\"3\"} 3"));
        assert!(page.contains("twl_service_job_wall_ms_bucket{le=\"+Inf\"} 6"));
        assert!(page.contains("twl_service_job_wall_ms_sum 90"));
        assert!(page.contains("twl_service_job_wall_ms_count 6"));
        let samples = parse_exposition(&page).expect("consistent histogram lints clean");
        assert_eq!(
            scalar_samples(&samples)["twl_service_job_wall_ms_count"],
            6.0
        );
    }

    #[test]
    fn lint_rejects_inconsistent_histograms() {
        let bad_cumulative = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"3\"} 4
h_bucket{le=\"+Inf\"} 5
h_sum 10
h_count 5
";
        assert!(parse_exposition(bad_cumulative)
            .unwrap_err()
            .contains("decreased"));
        let count_mismatch = "\
# TYPE h histogram
h_bucket{le=\"1\"} 2
h_bucket{le=\"+Inf\"} 2
h_sum 2
h_count 3
";
        assert!(parse_exposition(count_mismatch)
            .unwrap_err()
            .contains("_count"));
        let missing_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 2\nh_count 2\n";
        assert!(parse_exposition(missing_inf).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn lint_rejects_syntax_errors() {
        assert!(parse_exposition("not a metric line at all!{ 3").is_err());
        assert!(parse_exposition("name{le=\"unterminated} 3").is_err());
        assert!(parse_exposition("name nonnumeric").is_err());
        assert!(parse_exposition("# TYPE bad kind extra").is_err());
    }

    #[test]
    fn registry_snapshot_renders_and_lints() {
        let registry = crate::Registry::default();
        registry.counter("prom.test.writes").add(7);
        registry.gauge("prom.test.depth").set(-2);
        let h = registry.histogram("prom.test.lat");
        for v in [0, 5, 9, 1000] {
            h.record(v);
        }
        let page = render_exposition(&registry.snapshot());
        let samples = parse_exposition(&page).expect("whole page lints");
        let flat = scalar_samples(&samples);
        assert_eq!(flat["prom_test_writes"], 7.0);
        assert_eq!(flat["prom_test_depth"], -2.0);
        assert_eq!(flat["prom_test_lat_count"], 4.0);
        assert_eq!(flat["prom_test_lat_sum"], 1014.0);
    }
}
