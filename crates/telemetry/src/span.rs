//! Wall-clock span timing with parent/child nesting.
//!
//! A [`SpanGuard`] (usually via the [`span!`](crate::span!) macro) marks
//! a phase of work: construction notes the monotonic start time and
//! pushes a frame onto a *thread-local span stack*; drop pops the frame
//! and emits one `span` record carrying the phase's **inclusive** time
//! (whole interval) and **exclusive** self-time (inclusive minus the
//! time spent inside child spans), plus the enclosing span's name and
//! nesting depth. `twl-stats --spans` folds these records into a
//! self-time profile.
//!
//! Spans use [`std::time::Instant`] only — they never touch the
//! simulation RNG or any simulated state, so enabling them cannot
//! change a run's results; bit-identity oracles hold with spans on.
//! When emission is off (no sink installed, or spans suppressed via
//! [`set_spans_enabled`]) a guard is a no-op: no clock read, no stack
//! push, no allocation.
//!
//! For hot loops where even one record per iteration would be too many,
//! [`AggregateSpan`] accumulates many timed sections into a single
//! record with a `count` field (e.g. `drive_degraded` fault absorption
//! times every `absorb` call but emits once per run).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crate::record::TelemetryRecord;
use crate::sink;

/// Process-wide span switch, independent of the sink pipeline. On by
/// default; spans still only fire when a sink is installed.
static SPANS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Suppresses (or re-allows) span emission without touching installed
/// sinks; used by benches to measure span overhead against an
/// otherwise-identical configuration.
pub fn set_spans_enabled(on: bool) {
    SPANS_ENABLED.store(on, Ordering::Release);
}

/// Whether span guards are currently allowed to arm (the sink pipeline
/// must *also* be enabled for a span to actually record anything).
#[must_use]
pub fn spans_enabled() -> bool {
    SPANS_ENABLED.load(Ordering::Relaxed)
}

#[inline]
fn active() -> bool {
    // Cheapest check first: both are relaxed loads, but `enabled()` is
    // false in every non-traced process, short-circuiting the second.
    sink::enabled() && spans_enabled()
}

struct Frame {
    name: &'static str,
    label: String,
    start: Instant,
    /// Inclusive microseconds accumulated by already-closed children.
    child_us: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

fn duration_us(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Pops the top frame, charges its inclusive time to the parent frame,
/// and builds the record to emit.
fn close_frame(
    inclusive_us: u64,
    count: u64,
    name: &'static str,
    label: String,
) -> TelemetryRecord {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let depth = stack.len() as u64;
        let parent = stack.last_mut().map(|p| {
            p.child_us = p.child_us.saturating_add(inclusive_us);
            p.name.to_owned()
        });
        TelemetryRecord::Span {
            name: name.to_owned(),
            label,
            parent,
            depth,
            count,
            inclusive_us,
            exclusive_us: inclusive_us,
        }
    })
}

/// RAII timer for one phase of work; see the [module docs](self).
///
/// Guards must be dropped in reverse creation order *on the same
/// thread* (the natural behavior of stack variables). A guard created
/// while emission is off stays inert even if emission turns on before
/// it drops.
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    armed: bool,
}

impl SpanGuard {
    /// Opens an unlabeled span named `name`.
    pub fn new(name: &'static str) -> Self {
        Self::labeled(name, String::new())
    }

    /// Opens a span named `name` carrying a free-form `label` (scheme,
    /// workload, job id, …) that profiles group by.
    pub fn labeled(name: &'static str, label: impl Into<String>) -> Self {
        if !active() {
            return Self { armed: false };
        }
        STACK.with(|s| {
            s.borrow_mut().push(Frame {
                name,
                label: label.into(),
                start: Instant::now(),
                child_us: 0,
            });
        });
        Self { armed: true }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let frame = STACK.with(|s| {
            s.borrow_mut()
                .pop()
                .expect("span stack underflow: guards dropped out of order")
        });
        let inclusive_us = duration_us(frame.start.elapsed());
        let mut rec = close_frame(inclusive_us, 1, frame.name, frame.label);
        if let TelemetryRecord::Span { exclusive_us, .. } = &mut rec {
            *exclusive_us = inclusive_us.saturating_sub(frame.child_us);
        }
        sink::emit(&rec);
    }
}

/// Emits one pre-measured span record — for intervals measured across
/// threads (e.g. a job's queue wait, clocked from submit on one thread
/// to claim on another) where no guard can live on a single stack. The
/// time is charged to the calling thread's open span like any closed
/// child, so call it *outside* spans that did not contain the wait.
pub fn emit_measured(name: &'static str, label: impl Into<String>, elapsed_us: u64, count: u64) {
    if !active() {
        return;
    }
    let rec = close_frame(elapsed_us, count, name, label.into());
    sink::emit(&rec);
}

/// Opens a [`SpanGuard`]: `span!("drive")` or `span!("drive", label)`.
///
/// Bind it to a named local (`let _span = span!(..);`) — binding to `_`
/// drops immediately and records a zero-length phase.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::new($name)
    };
    ($name:expr, $label:expr) => {
        $crate::SpanGuard::labeled($name, $label)
    };
}

/// Accumulates many short timed sections into one `span` record.
///
/// [`AggregateSpan::time`] wraps each hot section; drop emits a single
/// record whose `count` is the number of sections and whose inclusive
/// and exclusive times are both the accumulated total (an aggregate has
/// no children of its own). The total is still charged to the enclosing
/// [`SpanGuard`]'s child time, so parent self-times stay honest.
#[derive(Debug)]
pub struct AggregateSpan {
    armed: bool,
    name: &'static str,
    label: String,
    total_ns: u64,
    count: u64,
}

impl AggregateSpan {
    /// Creates an aggregate named `name` with a grouping `label`;
    /// arming follows the same rules as [`SpanGuard`].
    pub fn new(name: &'static str, label: impl Into<String>) -> Self {
        Self {
            armed: active(),
            name,
            label: label.into(),
            total_ns: 0,
            count: 0,
        }
    }

    /// Runs `f`, timing it when the aggregate is armed.
    #[inline]
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        if !self.armed {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.total_ns = self
            .total_ns
            .saturating_add(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        self.count += 1;
        out
    }
}

impl Drop for AggregateSpan {
    fn drop(&mut self) {
        if !self.armed || self.count == 0 {
            return;
        }
        let rec = close_frame(
            self.total_ns / 1_000,
            self.count,
            self.name,
            std::mem::take(&mut self.label),
        );
        sink::emit(&rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{clear_sinks, install_sink, MemorySink};

    fn spans_of(records: &[TelemetryRecord]) -> Vec<(String, Option<String>, u64, u64, u64)> {
        records
            .iter()
            .filter_map(|r| match r {
                TelemetryRecord::Span {
                    name,
                    parent,
                    depth,
                    inclusive_us,
                    exclusive_us,
                    ..
                } => Some((
                    name.clone(),
                    parent.clone(),
                    *depth,
                    *inclusive_us,
                    *exclusive_us,
                )),
                _ => None,
            })
            .collect()
    }

    // One test owns the global pipeline (tests run in parallel and the
    // pipeline is process state), covering nesting, the disabled path,
    // and aggregates together.
    #[test]
    fn nesting_charges_children_into_parent_inclusive_time() {
        let _lock = crate::sink::pipeline_test_guard();
        // Disabled: no sink installed, so nothing records and the stack
        // stays untouched.
        {
            let _outer = SpanGuard::new("noop");
            let _inner = span!("noop.child", "x");
        }
        STACK.with(|s| assert!(s.borrow().is_empty()));

        let sink = MemorySink::new();
        let records = sink.handle();
        install_sink(sink);

        {
            let _parent = span!("parent", "twl");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _child = span!("child");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let mut agg = AggregateSpan::new("agg", "twl");
            for _ in 0..3 {
                agg.time(|| std::thread::sleep(std::time::Duration::from_millis(1)));
            }
        }
        clear_sinks();

        let spans = spans_of(&records.lock().expect("buffer"));
        // Children close (and record) before the parent.
        assert_eq!(spans.len(), 3, "{spans:?}");
        let (child, agg, parent) = (&spans[0], &spans[1], &spans[2]);
        assert_eq!(child.0, "child");
        assert_eq!(child.1.as_deref(), Some("parent"));
        assert_eq!(child.2, 1, "child sits at depth 1");
        assert_eq!(agg.0, "agg");
        assert_eq!(agg.1.as_deref(), Some("parent"));
        assert_eq!(parent.0, "parent");
        assert_eq!(parent.1, None);
        assert_eq!(parent.2, 0);

        // The invariant the profile view depends on: the parent's
        // inclusive time covers its own self-time plus every child's
        // inclusive time.
        assert_eq!(parent.4, parent.3 - child.3 - agg.3);
        assert!(
            parent.3 >= child.3 + agg.3,
            "parent inclusive ≥ sum of child inclusive"
        );
        // And the aggregate counted every section.
        let all = records.lock().expect("buffer");
        let TelemetryRecord::Span { count, .. } = &all[1] else {
            panic!("expected span");
        };
        assert_eq!(*count, 3);
    }

    #[test]
    fn span_switch_gates_arming() {
        let _lock = crate::sink::pipeline_test_guard();
        set_spans_enabled(false);
        assert!(!spans_enabled());
        // No sink is installed in this test, so guards stay inert either
        // way; the switch itself must flip back cleanly for other tests.
        {
            let _g = span!("gated");
        }
        set_spans_enabled(true);
        assert!(spans_enabled());
    }
}
