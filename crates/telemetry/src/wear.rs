//! Wear-map sampling: per-page write-count summaries captured on a
//! fixed write cadence into a bounded ring buffer.
//!
//! The paper's lifetime figures are all statements about the *shape* of
//! the wear distribution over time — how unequal it is (Gini, CoV) and
//! where its tail sits (p99/max). [`WearSummary`] condenses a wear-count
//! slice into those numbers plus a log₂ histogram, and
//! [`WearMapSampler`] captures one summary every `every_writes` device
//! writes, keeping the most recent `capacity` snapshots.

use std::collections::VecDeque;

/// Number of log₂ buckets in a wear histogram (bucket `i` counts pages
/// with wear in `[2^i, 2^(i+1))`; bucket 0 also holds wear 0 and 1).
pub const WEAR_BUCKETS: usize = 32;

/// Distribution summary of one wear-count snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct WearSummary {
    /// Pages summarized.
    pub pages: u64,
    /// Sum of all per-page wear counts.
    pub total: u64,
    /// Mean wear per page.
    pub mean: f64,
    /// Coefficient of variation (σ/μ; 0 when the mean is 0).
    pub cov: f64,
    /// Gini coefficient (0 = perfectly level, →1 = concentrated).
    pub gini: f64,
    /// Median per-page wear.
    pub p50: u64,
    /// 90th-percentile per-page wear.
    pub p90: u64,
    /// 99th-percentile per-page wear.
    pub p99: u64,
    /// Maximum per-page wear.
    pub max: u64,
    /// log₂ histogram of per-page wear.
    pub histogram: Vec<u64>,
}

impl WearSummary {
    /// Summarizes a slice of per-page wear counts.
    ///
    /// # Panics
    ///
    /// Panics if `wear` is empty.
    #[must_use]
    pub fn from_counts(wear: &[u64]) -> Self {
        assert!(!wear.is_empty(), "cannot summarize an empty wear map");
        let pages = wear.len() as u64;
        let total: u64 = wear.iter().sum();
        let mean = total as f64 / pages as f64;

        let mut sorted = wear.to_vec();
        sorted.sort_unstable();

        let variance = wear
            .iter()
            .map(|&w| {
                let d = w as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / pages as f64;
        let cov = if mean > 0.0 {
            variance.sqrt() / mean
        } else {
            0.0
        };

        // Gini over the sorted counts: (2·Σ i·x_i)/(n·Σ x_i) − (n+1)/n.
        let gini = if total == 0 {
            0.0
        } else {
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &w)| (i as f64 + 1.0) * w as f64)
                .sum();
            (2.0 * weighted) / (pages as f64 * total as f64) - (pages as f64 + 1.0) / pages as f64
        };

        let pct = |q: f64| -> u64 {
            let idx = ((q * (pages as f64 - 1.0)).round() as usize).min(sorted.len() - 1);
            sorted[idx]
        };

        let mut histogram = vec![0u64; WEAR_BUCKETS];
        for &w in wear {
            let idx = if w <= 1 {
                0
            } else {
                (63 - w.leading_zeros() as usize).min(WEAR_BUCKETS - 1)
            };
            histogram[idx] += 1;
        }

        Self {
            pages,
            total,
            mean,
            cov,
            gini,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            max: *sorted.last().expect("non-empty"),
            histogram,
        }
    }
}

/// One captured wear-map sample.
#[derive(Debug, Clone, PartialEq)]
pub struct WearSnapshot {
    /// Monotonic snapshot index within the run (0-based).
    pub seq: u64,
    /// Device writes observed when the snapshot was taken.
    pub at_writes: u64,
    /// The distribution summary.
    pub summary: WearSummary,
}

/// Captures [`WearSnapshot`]s every `every_writes` observed writes into
/// a ring buffer of bounded capacity.
///
/// # Examples
///
/// ```
/// use twl_telemetry::WearMapSampler;
///
/// let mut sampler = WearMapSampler::new(100, 8);
/// let mut wear = vec![0u64; 16];
/// for i in 0..250u64 {
///     wear[(i % 16) as usize] += 1;
///     sampler.observe(1, &wear);
/// }
/// assert_eq!(sampler.snapshots().count(), 2); // at 100 and 200 writes
/// ```
#[derive(Debug, Clone)]
pub struct WearMapSampler {
    every_writes: u64,
    capacity: usize,
    seen: u64,
    next_due: u64,
    seq: u64,
    ring: VecDeque<WearSnapshot>,
}

impl WearMapSampler {
    /// Creates a sampler firing every `every_writes` writes and keeping
    /// the `capacity` most recent snapshots.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    #[must_use]
    pub fn new(every_writes: u64, capacity: usize) -> Self {
        assert!(every_writes > 0, "sampling cadence must be positive");
        assert!(capacity > 0, "ring must hold at least one snapshot");
        Self {
            every_writes,
            capacity,
            seen: 0,
            next_due: every_writes,
            seq: 0,
            ring: VecDeque::with_capacity(capacity),
        }
    }

    /// The configured cadence in writes.
    #[must_use]
    pub fn every_writes(&self) -> u64 {
        self.every_writes
    }

    /// Advances the write clock by `writes`; if one or more sampling
    /// boundaries were crossed, captures ONE snapshot of `wear` (the
    /// current state — intermediate states are gone) and returns it.
    pub fn observe(&mut self, writes: u64, wear: &[u64]) -> Option<&WearSnapshot> {
        self.seen += writes;
        if self.seen < self.next_due {
            return None;
        }
        while self.next_due <= self.seen {
            self.next_due += self.every_writes;
        }
        let snapshot = WearSnapshot {
            seq: self.seq,
            at_writes: self.seen,
            summary: WearSummary::from_counts(wear),
        };
        self.seq += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(snapshot);
        self.ring.back()
    }

    /// Forces a snapshot right now (end-of-run capture).
    pub fn snapshot_now(&mut self, wear: &[u64]) -> &WearSnapshot {
        let snapshot = WearSnapshot {
            seq: self.seq,
            at_writes: self.seen,
            summary: WearSummary::from_counts(wear),
        };
        self.seq += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(snapshot);
        self.ring.back().expect("just pushed")
    }

    /// The retained snapshots, oldest first.
    pub fn snapshots(&self) -> impl Iterator<Item = &WearSnapshot> {
        self.ring.iter()
    }

    /// The most recent snapshot, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&WearSnapshot> {
        self.ring.back()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_wear_is_perfectly_level() {
        let s = WearSummary::from_counts(&[10; 64]);
        assert!(s.gini.abs() < 1e-12);
        assert!(s.cov.abs() < 1e-12);
        assert_eq!((s.p50, s.p99, s.max), (10, 10, 10));
        assert_eq!(s.total, 640);
    }

    #[test]
    fn concentrated_wear_has_high_gini() {
        let mut wear = vec![0u64; 100];
        wear[0] = 1_000;
        let s = WearSummary::from_counts(&wear);
        assert!(s.gini > 0.98, "gini {}", s.gini);
        assert_eq!(s.max, 1_000);
        assert_eq!(s.p50, 0);
    }

    #[test]
    fn histogram_covers_all_pages() {
        let wear: Vec<u64> = (0..1000).collect();
        let s = WearSummary::from_counts(&wear);
        assert_eq!(s.histogram.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn sampler_fires_on_cadence_and_bounds_ring() {
        let mut sampler = WearMapSampler::new(10, 3);
        let wear = vec![1u64; 4];
        let mut fired = 0;
        for _ in 0..100 {
            if sampler.observe(1, &wear).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 10);
        assert_eq!(sampler.snapshots().count(), 3, "ring keeps the newest 3");
        let seqs: Vec<u64> = sampler.snapshots().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        assert_eq!(sampler.latest().expect("non-empty").at_writes, 100);
    }

    #[test]
    fn bulk_observe_crossing_many_boundaries_fires_once() {
        let mut sampler = WearMapSampler::new(10, 8);
        let wear = vec![1u64; 4];
        assert!(sampler.observe(35, &wear).is_some());
        assert_eq!(sampler.snapshots().count(), 1);
        // Next boundary is 40: 5 more writes reach it.
        assert!(sampler.observe(4, &wear).is_none());
        assert!(sampler.observe(1, &wear).is_some());
    }
}
