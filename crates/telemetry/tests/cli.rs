//! `twl-stats` CLI contract: a missing or non-trace input must exit
//! non-zero with a diagnostic on stderr (never an empty report), while
//! a real trace — including a spans-only one — renders fine.

use std::process::Command;

use twl_telemetry::TelemetryRecord;

fn twl_stats(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_twl-stats"))
        .args(args)
        .output()
        .expect("run twl-stats")
}

#[test]
fn missing_file_exits_nonzero_with_a_diagnostic() {
    let out = twl_stats(&["/nonexistent/telemetry/trace.jsonl"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot read trace"),
        "unhelpful error: {stderr}"
    );
}

#[test]
fn garbage_file_exits_nonzero_instead_of_an_empty_report() {
    let dir = std::env::temp_dir().join(format!("twl-stats-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("not-a-trace.txt");
    std::fs::write(&path, "this is\nnot a telemetry trace\n").expect("write garbage");

    for mode in [&["--spans"][..], &[][..]] {
        let mut args: Vec<&str> = mode.to_vec();
        let path_str = path.to_string_lossy().into_owned();
        args.push(&path_str);
        let out = twl_stats(&args);
        assert!(!out.status.success(), "garbage accepted in mode {mode:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("not a trace file"),
            "unhelpful error: {stderr}"
        );
        assert!(out.stdout.is_empty(), "no report should print");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn span_trace_renders_a_profile_table() {
    let dir = std::env::temp_dir().join(format!("twl-stats-span-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("spans.jsonl");
    let records = [
        TelemetryRecord::Span {
            name: "drive".to_owned(),
            label: "TWL_swp".to_owned(),
            parent: Some("job".to_owned()),
            depth: 1,
            count: 1,
            inclusive_us: 900,
            exclusive_us: 900,
        },
        TelemetryRecord::Span {
            name: "job".to_owned(),
            label: "job-1".to_owned(),
            parent: None,
            depth: 0,
            count: 1,
            inclusive_us: 1_000,
            exclusive_us: 100,
        },
    ];
    let lines: String = records.iter().map(|r| r.to_jsonl() + "\n").collect();
    std::fs::write(&path, lines).expect("write trace");

    let path_str = path.to_string_lossy().into_owned();
    let out = twl_stats(&["--spans", &path_str]);
    assert!(out.status.success(), "twl-stats --spans failed: {out:?}");
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(table.contains("drive"), "missing phase row: {table}");
    assert!(table.contains("total self-time"), "missing footer: {table}");

    let out = twl_stats(&["--spans", &path_str, "--format", "json"]);
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"spans\""), "missing spans array: {json}");
    std::fs::remove_dir_all(&dir).ok();
}
