//! Property tests for the Prometheus exposition: pages rendered from
//! arbitrary registry states must lint clean, keep `_bucket` series
//! cumulative/monotone, and agree between `_count` and the `+Inf`
//! bucket — plus label-escaping round-trips through the parser.

use proptest::prelude::*;
use twl_telemetry::prom::{
    escape_label_value, parse_exposition, render_exposition, scalar_samples, PromWriter,
};
use twl_telemetry::{HistogramSnapshot, MetricsSnapshot};

fn snapshot_from(
    counters: Vec<u64>,
    gauges: Vec<i64>,
    histogram_samples: Vec<Vec<u64>>,
) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for (i, v) in counters.into_iter().enumerate() {
        snap.counters.push((format!("prop.counter.{i}"), v));
    }
    for (i, v) in gauges.into_iter().enumerate() {
        snap.gauges.push((format!("prop.gauge.{i}"), v));
    }
    for (i, samples) in histogram_samples.into_iter().enumerate() {
        // Feed a real Histogram so the snapshot's buckets/count/sum/max
        // relationships are exactly what the registry would produce.
        let h = twl_telemetry::Histogram::new();
        for s in samples {
            h.record(s);
        }
        snap.histograms.push(HistogramSnapshot {
            name: format!("prop.hist.{i}"),
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
            buckets: h.bucket_counts(),
        });
    }
    snap
}

proptest! {
    /// Any registry state renders to a page the lint accepts, with
    /// every counter/gauge value surviving the round trip.
    #[test]
    fn random_registry_states_render_lintable_pages(
        counters in proptest::collection::vec(0u64..u64::MAX / 2, 0..4),
        gauges in proptest::collection::vec(0u64..2000, 0..4),
        hist in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 0..40),
            0..3,
        ),
    ) {
        // The vendored proptest only samples unsigned ranges; shift to
        // cover negative gauge values too.
        let gauges: Vec<i64> = gauges.into_iter().map(|v| v as i64 - 1000).collect();
        let snap = snapshot_from(counters.clone(), gauges, hist);
        let page = render_exposition(&snap);
        let samples = parse_exposition(&page).expect("page lints clean");
        let flat = scalar_samples(&samples);
        for (name, v) in &snap.counters {
            let exposed = flat[&name.replace('.', "_")];
            prop_assert_eq!(exposed, *v as f64);
        }
        for (name, v) in &snap.gauges {
            let exposed = flat[&name.replace('.', "_")];
            prop_assert_eq!(exposed, *v as f64);
        }
    }

    /// The `_bucket` series is cumulative (non-decreasing in `le`
    /// order) and its `+Inf` sample equals `_count`, which equals the
    /// number of recorded samples.
    #[test]
    fn histogram_buckets_are_cumulative_and_match_count(
        samples in proptest::collection::vec(0u64..u64::MAX, 0..60),
    ) {
        let snap = snapshot_from(vec![], vec![], vec![samples.clone()]);
        let page = render_exposition(&snap);
        let parsed = parse_exposition(&page).expect("page lints clean");
        let buckets: Vec<f64> = parsed
            .iter()
            .filter(|s| s.name == "prop_hist_0_bucket")
            .map(|s| s.value)
            .collect();
        prop_assert!(!buckets.is_empty());
        for pair in buckets.windows(2) {
            prop_assert!(pair[0] <= pair[1], "cumulative counts decreased: {buckets:?}");
        }
        let flat = scalar_samples(&parsed);
        prop_assert_eq!(*buckets.last().unwrap(), flat["prop_hist_0_count"]);
        prop_assert_eq!(flat["prop_hist_0_count"], samples.len() as f64);
    }

    /// Label values with quotes, backslashes, and newlines round-trip
    /// exactly through escape → render → parse.
    #[test]
    fn label_values_roundtrip(
        raw in proptest::collection::vec(0u8..5, 0..12),
    ) {
        // Map digits onto the troublesome alphabet.
        let value: String = raw
            .iter()
            .map(|b| ['a', '\\', '"', '\n', 'z'][*b as usize])
            .collect();
        let mut w = PromWriter::new();
        w.gauge_family("prop_label_gauge", &[(&[("job", value.as_str())], 1.0)]);
        let parsed = parse_exposition(&w.finish()).expect("label page lints clean");
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(parsed[0].label("job"), Some(value.as_str()));
        // And the escaper alone never produces raw quotes/newlines.
        let escaped = escape_label_value(&value);
        prop_assert!(!escaped.contains('\n'));
    }
}

/// Quantile estimates never leave the observed [0, max] envelope and
/// stay monotone in `q` — checked against the same random sample sets.
#[test]
fn quantiles_bounded_and_monotone() {
    let h = twl_telemetry::Histogram::new();
    assert_eq!(h.quantile(0.99), 0.0, "empty histogram reports 0");
    let samples: Vec<u64> = (0..257u64)
        .map(|i| i.wrapping_mul(2654435761) % 100_000)
        .collect();
    for &s in &samples {
        h.record(s);
    }
    let mut prev = 0.0;
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let v = h.quantile(q);
        assert!(v >= 0.0 && v <= h.max() as f64, "q={q} v={v}");
        assert!(v >= prev, "quantiles must be monotone in q");
        prev = v;
    }
}
