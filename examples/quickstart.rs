//! Quickstart: protect a PCM device with Toss-up Wear Leveling and
//! watch it absorb a hostile write pattern.
//!
//! Run: `cargo run --release --example quickstart`

use tossup_wl::attacks::AttackKind;
use tossup_wl::lifetime::{attack_matrix, gmean_years, Calibration, SchemeKind, SimLimits};
use tossup_wl::pcm::{PcmConfig, PcmDevice};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // A scaled simulation device: 1024 pages whose endurance is drawn
    // from the paper's process-variation model (Gaussian, sigma = 11 %).
    let pcm = PcmConfig::builder()
        .pages(1024)
        .mean_endurance(20_000)
        .seed(7)
        .build()?;

    println!(
        "device: {} pages, mean endurance {}",
        pcm.pages, pcm.mean_endurance
    );
    println!(
        "process variation: weakest page {} writes, strongest {} writes\n",
        PcmDevice::new(&pcm).endurance_map().min(),
        PcmDevice::new(&pcm).endurance_map().max()
    );

    // Run every scheme against all four attack modes and report
    // calibrated lifetimes (ideal = 6.6 years at 8 GiB/s).
    let calibration = Calibration::attack_8gbps();
    println!(
        "lifetime under attack (years; ideal = {:.1}):",
        calibration.ideal_years()
    );
    println!(
        "  {:8} {:>7} {:>7} {:>7} {:>13} {:>7}",
        "scheme", "repeat", "random", "scan", "inconsistent", "Gmean"
    );
    let schemes = [
        SchemeKind::Nowl,
        SchemeKind::Bwl,
        SchemeKind::Sr,
        SchemeKind::TwlSwp,
    ];
    let reports = attack_matrix(&pcm, &schemes, &AttackKind::ALL, &SimLimits::default());
    for (i, kind) in schemes.iter().enumerate() {
        let row = &reports[i * AttackKind::ALL.len()..(i + 1) * AttackKind::ALL.len()];
        println!(
            "  {:8} {:>7.2} {:>7.2} {:>7.2} {:>13.2} {:>7.2}",
            kind.label(),
            row[0].years,
            row[1].years,
            row[2].years,
            row[3].years,
            gmean_years(row),
        );
    }
    println!("\nTWL survives the inconsistent attack that collapses prediction-based BWL,");
    println!("and beats PV-blind Security Refresh whenever process variation matters.");
    Ok(())
}
