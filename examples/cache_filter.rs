//! End-to-end pipeline: a synthetic program's accesses flow through
//! Table 1's L1/L2 cache hierarchy, and the filtered write-back stream
//! drives a TWL-protected PCM.
//!
//! Shows what the cache stack does to the traffic the wear-leveling
//! layer actually sees — and why §3.1's attacker turns the caches off.
//!
//! Run: `cargo run --release --example cache_filter`

use tossup_wl::cache::{CacheHierarchy, CpuWorkload, CpuWorkloadConfig};
use tossup_wl::pcm::{LogicalPageAddr, PcmConfig, PcmDevice};
use tossup_wl::twl::{TossUpWearLeveling, TwlConfig};
use tossup_wl::wl::WearLeveler;

const CPU_ACCESSES: u64 = 3_000_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pcm = PcmConfig::builder()
        .pages(16_384)
        .mean_endurance(100_000_000)
        .seed(4)
        .build()?;
    let mut device = PcmDevice::new(&pcm);
    let mut twl = TossUpWearLeveling::new(&TwlConfig::dac17(), device.endurance_map());

    let mut hierarchy = CacheHierarchy::dac17(pcm.page_size_bytes);
    let mut cpu = CpuWorkload::new(&CpuWorkloadConfig {
        footprint_bytes: pcm.pages * pcm.page_size_bytes,
        region_alpha: 1.0,
        mean_burst: 16,
        write_fraction: 0.4,
        seed: 9,
    });

    let mut pcm_reads = 0u64;
    let mut pcm_writes = 0u64;
    for _ in 0..CPU_ACCESSES {
        let (addr, is_write) = cpu.next_access();
        for cmd in hierarchy.access(addr, is_write) {
            let la = LogicalPageAddr::new(cmd.la.index() % pcm.pages);
            if cmd.is_write() {
                twl.write(la, &mut device)?;
                pcm_writes += 1;
            } else {
                twl.read(la, &device)?;
                pcm_reads += 1;
            }
        }
    }
    for cmd in hierarchy.flush() {
        if cmd.is_write() {
            twl.write(
                LogicalPageAddr::new(cmd.la.index() % pcm.pages),
                &mut device,
            )?;
            pcm_writes += 1;
        }
    }

    let stats = hierarchy.stats();
    println!("CPU accesses:        {CPU_ACCESSES}");
    println!(
        "L1: {:>8} hits / {:>8} misses (hit rate {:.1}%)",
        stats.l1.hits,
        stats.l1.misses,
        100.0 * stats.l1.hit_rate()
    );
    println!(
        "L2: {:>8} hits / {:>8} misses (hit rate {:.1}%)",
        stats.l2.hits,
        stats.l2.misses,
        100.0 * stats.l2.hit_rate()
    );
    println!("PCM reads:           {pcm_reads}");
    println!("PCM writes:          {pcm_writes}");
    println!(
        "memory traffic ratio: {:.2}% of CPU accesses reach PCM",
        100.0 * stats.memory_traffic_ratio()
    );
    println!(
        "\nTWL on the filtered stream: {} device writes, swap/write {:.4}, extra writes {:.3}",
        device.total_writes(),
        twl.stats().swap_per_write(),
        twl.stats().extra_write_ratio()
    );
    Ok(())
}
