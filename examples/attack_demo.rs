//! A blow-by-blow demonstration of the inconsistent-write attack
//! (paper §3.2) against a prediction-based scheme, and why TWL shrugs
//! it off.
//!
//! The demo traces the attacker's view — response-time spikes, phase
//! reversals — and the device's view — wear accumulating on the weakest
//! physical frame.
//!
//! Run: `cargo run --release --example attack_demo`

use tossup_wl::attacks::{Attack, AttackKind, AttackStream};
use tossup_wl::baselines::{BloomFilterWl, BwlConfig};
use tossup_wl::pcm::{PcmConfig, PcmDevice, PhysicalPageAddr};
use tossup_wl::twl::{TossUpWearLeveling, TwlConfig};
use tossup_wl::wl::WearLeveler;

const PAGES: u64 = 1024;
const ENDURANCE: u64 = 20_000;
const CHECKPOINT: u64 = 16_384;

fn trace(name: &str, scheme: &mut dyn WearLeveler, device: &mut PcmDevice) {
    let weakest = (0..PAGES)
        .map(PhysicalPageAddr::new)
        .min_by_key(|&pa| device.endurance(pa))
        .expect("device is non-empty");
    println!(
        "\n=== {name} === (weakest frame {weakest}, endurance {})",
        device.endurance(weakest)
    );
    let mut attack = Attack::new(AttackKind::Inconsistent, PAGES, 7);
    let mut feedback = None;
    let mut writes = 0u64;
    loop {
        let la = attack.next_write(feedback.as_ref());
        match scheme.write(la, device) {
            Ok(out) => feedback = Some(out),
            Err(e) => {
                println!("  DEVICE DEAD after {writes} writes: {e}");
                return;
            }
        }
        writes += 1;
        if writes.is_multiple_of(CHECKPOINT) {
            let reversals = match &attack {
                Attack::Inconsistent(a) => a.reversals() + a.timeout_flips(),
                _ => 0,
            };
            println!(
                "  {:>8} writes | weakest frame wear {:>6}/{} | attacker reversals {:>3}",
                writes,
                device.wear(weakest),
                device.endurance(weakest),
                reversals,
            );
        }
        if writes >= 20 * CHECKPOINT {
            println!(
                "  attack gave up after {writes} writes; device healthy (max wear ratio {:.2})",
                device.wear_stats().max_wear_ratio
            );
            return;
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pcm = PcmConfig::builder()
        .pages(PAGES)
        .mean_endurance(ENDURANCE)
        .seed(7)
        .build()?;

    // Victim: bloom-filter wear leveling — predicts hot/cold and trusts
    // the prediction.
    let mut device = PcmDevice::new(&pcm);
    let mut bwl = BloomFilterWl::new(&BwlConfig::for_pages(PAGES), PAGES);
    trace("BWL (prediction-based)", &mut bwl, &mut device);

    // TWL: no prediction to poison.
    let mut device = PcmDevice::new(&pcm);
    let mut twl = TossUpWearLeveling::new(&TwlConfig::dac17(), device.endurance_map());
    trace("TWL (toss-up)", &mut twl, &mut device);

    println!("\nSame attacker, same device, same writes: only the predictor dies.");
    Ok(())
}
