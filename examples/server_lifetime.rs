//! Server-lifetime planning: how many years does a PCM main memory
//! last under your workload mix, per wear-leveling scheme?
//!
//! Uses the calibrated PARSEC-like workloads (Table 2 bandwidths and
//! locality) and the paper's years conversion.
//!
//! Run: `cargo run --release --example server_lifetime [-- <benchmark>]`

use std::env;
use tossup_wl::lifetime::{build_scheme, run_workload, Calibration, SchemeKind, SimLimits};
use tossup_wl::pcm::{PcmConfig, PcmDevice};
use tossup_wl::workloads::ParsecBenchmark;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let filter = env::args().nth(1);
    let benchmarks: Vec<ParsecBenchmark> = ParsecBenchmark::ALL
        .into_iter()
        .filter(|b| filter.as_deref().is_none_or(|f| b.name() == f))
        .collect();
    if benchmarks.is_empty() {
        eprintln!(
            "unknown benchmark {:?}; choose one of: {}",
            filter,
            ParsecBenchmark::ALL.map(|b| b.name()).join(", ")
        );
        std::process::exit(1);
    }

    let pcm = PcmConfig::builder()
        .pages(2048)
        .mean_endurance(20_000)
        .seed(3)
        .build()?;
    println!(
        "{:>14}  {:>9}  {:>10}  {:>8}  {:>8}  {:>8}",
        "benchmark", "BW (MB/s)", "ideal (yr)", "NOWL", "SR", "TWL"
    );

    for bench in benchmarks {
        let calibration = Calibration::for_bandwidth_mbps(bench.write_bandwidth_mbps());
        let mut years = Vec::new();
        for kind in [SchemeKind::Nowl, SchemeKind::Sr, SchemeKind::TwlSwp] {
            let mut device = PcmDevice::new(&pcm);
            let mut scheme = build_scheme(kind, &device)?;
            let mut workload = bench.workload(pcm.pages, 3);
            let report = run_workload(
                scheme.as_mut(),
                &mut device,
                &mut workload,
                bench.name(),
                &SimLimits::default(),
                &calibration,
            );
            years.push(report.years);
        }
        println!(
            "{:>14}  {:>9.0}  {:>10.1}  {:>8.1}  {:>8.1}  {:>8.1}",
            bench.name(),
            bench.write_bandwidth_mbps(),
            calibration.ideal_years(),
            years[0],
            years[1],
            years[2],
        );
    }
    println!("\n(3-4 years is the server replacement cycle the paper targets.)");
    Ok(())
}
