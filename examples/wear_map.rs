//! Visualize how differently the schemes distribute wear: an ASCII
//! wear-ratio heatmap of the device after a fixed write budget under a
//! skewed workload, plus a wear-percentile table, with the full
//! telemetry trace exported as JSONL for `twl-stats`.
//!
//! Each heatmap cell is a physical frame; the glyph encodes
//! wear/endurance: `.` < 10 %, `-` < 30 %, `+` < 60 %, `#` < 90 %,
//! `!` ≥ 90 %.
//!
//! Run: `cargo run --release --example wear_map`
//! Then: `cargo run --release --bin twl-stats -- results/wear_map.trace.jsonl`

use tossup_wl::lifetime::{build_scheme, SchemeKind};
use tossup_wl::pcm::{PcmConfig, PcmDevice, PhysicalPageAddr};
use tossup_wl::telemetry::{JsonlSink, TelemetryRecord, WearMapSampler};
use tossup_wl::workloads::{SyntheticWorkload, WorkloadConfig};

const PAGES: u64 = 1024;
const BUDGET: u64 = 6_000_000;
const TRACE_PATH: &str = "results/wear_map.trace.jsonl";

fn glyph(ratio: f64) -> char {
    match ratio {
        r if r < 0.10 => '.',
        r if r < 0.30 => '-',
        r if r < 0.60 => '+',
        r if r < 0.90 => '#',
        _ => '!',
    }
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let pcm = PcmConfig::builder()
        .pages(PAGES)
        .mean_endurance(20_000)
        .seed(11)
        .build()?;

    tossup_wl::telemetry::install_sink(JsonlSink::create(TRACE_PATH)?);
    tossup_wl::telemetry::emit(&TelemetryRecord::RunStart {
        tool: "wear_map".to_owned(),
        pages: PAGES,
        mean_endurance: 20_000,
        seed: 11,
    });

    let mut percentile_rows = Vec::new();
    for kind in [
        SchemeKind::Nowl,
        SchemeKind::Sr,
        SchemeKind::Bwl,
        SchemeKind::TwlSwp,
    ] {
        let mut device = PcmDevice::new(&pcm);
        let mut scheme = build_scheme(kind, &device)?;
        let mut workload = SyntheticWorkload::new(&WorkloadConfig {
            pages: PAGES,
            footprint: PAGES / 2,
            zipf_alpha: 0.9,
            read_fraction: 0.0,
            seed: 5,
        });
        // Snapshot the wear map 16 times across the budget into the
        // trace, so twl-stats (or a plotting script) can see the
        // inequality evolve, not just the end state.
        let mut sampler = WearMapSampler::new(BUDGET / 16, 16);
        let mut died_at = None;
        for i in 0..BUDGET {
            match scheme.write(workload.next_write_la(), &mut device) {
                Ok(out) => {
                    if let Some(snapshot) =
                        sampler.observe(u64::from(out.device_writes), device.wear_counters())
                    {
                        tossup_wl::telemetry::emit(&TelemetryRecord::Wear {
                            scheme: kind.label().to_owned(),
                            workload: "zipf-0.9".to_owned(),
                            snapshot: snapshot.clone(),
                        });
                    }
                }
                Err(_) => {
                    died_at = Some(i);
                    break;
                }
            }
        }
        let summary = sampler.snapshot_now(device.wear_counters()).summary.clone();
        let stats = device.wear_stats();
        println!(
            "\n=== {} ===  writes: {}{}  gini {:.3}  max wear-ratio {:.2}",
            kind.label(),
            died_at.unwrap_or(BUDGET),
            if died_at.is_some() { " (DIED)" } else { "" },
            stats.wear_gini,
            stats.max_wear_ratio,
        );
        for row in 0..16u64 {
            let line: String = (0..64)
                .map(|col| {
                    let pa = PhysicalPageAddr::new(row * 64 + col);
                    glyph(device.wear(pa) as f64 / device.endurance(pa) as f64)
                })
                .collect();
            println!("  {line}");
        }
        percentile_rows.push(vec![
            kind.label().to_owned(),
            format!("{:.1}", summary.mean),
            format!("{:.3}", summary.cov),
            format!("{:.3}", summary.gini),
            summary.p50.to_string(),
            summary.p90.to_string(),
            summary.p99.to_string(),
            summary.max.to_string(),
        ]);
    }
    println!("\nLegend: . <10%  - <30%  + <60%  # <90%  ! >=90% of the frame's own endurance");

    println!("\nPer-page wear distribution after the budget:\n");
    let headers = ["scheme", "mean", "cov", "gini", "p50", "p90", "p99", "max"];
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            percentile_rows
                .iter()
                .map(|r| r[i].len())
                .chain([h.len()])
                .max()
                .unwrap_or(0)
        })
        .collect();
    let print_row = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", joined.join("  "));
    };
    print_row(&headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>());
    println!("  {}", "-".repeat(widths.iter().sum::<usize>() + 2 * 7));
    for row in &percentile_rows {
        print_row(row);
    }

    tossup_wl::telemetry::clear_sinks();
    println!(
        "\ntrace written to {TRACE_PATH} (inspect with: cargo run --bin twl-stats -- {TRACE_PATH})"
    );
    Ok(())
}
