//! Visualize how differently the schemes distribute wear: an ASCII
//! wear-ratio heatmap of the device after a fixed write budget under a
//! skewed workload.
//!
//! Each cell is a physical frame; the glyph encodes wear/endurance:
//! `.` < 10 %, `-` < 30 %, `+` < 60 %, `#` < 90 %, `!` ≥ 90 %.
//!
//! Run: `cargo run --release --example wear_map`

use tossup_wl::lifetime::{build_scheme, SchemeKind};
use tossup_wl::pcm::{PcmConfig, PcmDevice, PhysicalPageAddr};
use tossup_wl::workloads::{SyntheticWorkload, WorkloadConfig};

const PAGES: u64 = 1024;
const BUDGET: u64 = 6_000_000;

fn glyph(ratio: f64) -> char {
    match ratio {
        r if r < 0.10 => '.',
        r if r < 0.30 => '-',
        r if r < 0.60 => '+',
        r if r < 0.90 => '#',
        _ => '!',
    }
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let pcm = PcmConfig::builder()
        .pages(PAGES)
        .mean_endurance(20_000)
        .seed(11)
        .build()?;

    for kind in [
        SchemeKind::Nowl,
        SchemeKind::Sr,
        SchemeKind::Bwl,
        SchemeKind::TwlSwp,
    ] {
        let mut device = PcmDevice::new(&pcm);
        let mut scheme = build_scheme(kind, &device)?;
        let mut workload = SyntheticWorkload::new(&WorkloadConfig {
            pages: PAGES,
            footprint: PAGES / 2,
            zipf_alpha: 0.9,
            read_fraction: 0.0,
            seed: 5,
        });
        let mut died_at = None;
        for i in 0..BUDGET {
            if scheme.write(workload.next_write_la(), &mut device).is_err() {
                died_at = Some(i);
                break;
            }
        }
        let stats = device.wear_stats();
        println!(
            "\n=== {} ===  writes: {}{}  gini {:.3}  max wear-ratio {:.2}",
            kind.label(),
            died_at.unwrap_or(BUDGET),
            if died_at.is_some() { " (DIED)" } else { "" },
            stats.wear_gini,
            stats.max_wear_ratio,
        );
        for row in 0..16u64 {
            let line: String = (0..64)
                .map(|col| {
                    let pa = PhysicalPageAddr::new(row * 64 + col);
                    glyph(device.wear(pa) as f64 / device.endurance(pa) as f64)
                })
                .collect();
            println!("  {line}");
        }
    }
    println!("\nLegend: . <10%  - <30%  + <60%  # <90%  ! >=90% of the frame's own endurance");
    Ok(())
}
